#include "nn/transformer.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/phaseprof.h"

namespace emmark {

const char* to_string(ArchFamily family) {
  switch (family) {
    case ArchFamily::kOptStyle: return "opt-style";
    case ArchFamily::kLlamaStyle: return "llama-style";
  }
  return "?";
}

void ModelConfig::save(BinaryWriter& w) const {
  w.write_u32(family == ArchFamily::kOptStyle ? 0u : 1u);
  w.write_i64(vocab_size);
  w.write_i64(d_model);
  w.write_i64(n_layers);
  w.write_i64(n_heads);
  w.write_i64(ffn_hidden);
  w.write_i64(max_seq);
  w.write_u64(init_seed);
}

ModelConfig ModelConfig::load(BinaryReader& r) {
  ModelConfig c;
  c.family = r.read_u32() == 0u ? ArchFamily::kOptStyle : ArchFamily::kLlamaStyle;
  c.vocab_size = r.read_i64();
  c.d_model = r.read_i64();
  c.n_layers = r.read_i64();
  c.n_heads = r.read_i64();
  c.ffn_hidden = r.read_i64();
  c.max_seq = r.read_i64();
  c.init_seed = r.read_u64();
  return c;
}

TransformerBlock::TransformerBlock(const std::string& name,
                                   const ModelConfig& config, Rng& rng)
    : use_rms_(config.family == ArchFamily::kLlamaStyle),
      ln1_(name + ".ln1", config.d_model),
      ln2_(name + ".ln2", config.d_model),
      rms1_(name + ".rms1", config.d_model),
      rms2_(name + ".rms2", config.d_model),
      attn_(name + ".attn", config.d_model, config.n_heads,
            /*use_rope=*/config.family == ArchFamily::kLlamaStyle,
            config.max_seq, /*bias=*/config.family == ArchFamily::kOptStyle, rng),
      ffn_(name + ".ffn",
           config.family == ArchFamily::kOptStyle ? FfnKind::kRelu : FfnKind::kSwiGlu,
           config.d_model, config.ffn_hidden,
           /*bias=*/config.family == ArchFamily::kOptStyle, rng) {}

void TransformerBlock::forward(const Tensor& x, int64_t batch, int64_t seq,
                               Tensor& y) {
  if (use_rms_) {
    rms1_.forward(x, cached_norm1_);
  } else {
    ln1_.forward(x, cached_norm1_);
  }
  attn_.forward(cached_norm1_, batch, seq, cached_attn_);
  cached_mid_ = x;
  cached_mid_.add_(cached_attn_);

  if (use_rms_) {
    rms2_.forward(cached_mid_, cached_norm2_);
  } else {
    ln2_.forward(cached_mid_, cached_norm2_);
  }
  ffn_.forward(cached_norm2_, cached_ffn_);
  y = cached_mid_;
  y.add_(cached_ffn_);
}

void TransformerBlock::backward(const Tensor& dy, Tensor& dx) {
  // Second residual: y = mid + ffn(norm2(mid))
  Tensor dnorm2;
  ffn_.backward(dy, dnorm2);
  Tensor dmid;
  if (use_rms_) {
    rms2_.backward(dnorm2, dmid);
  } else {
    ln2_.backward(dnorm2, dmid);
  }
  dmid.add_(dy);

  // First residual: mid = x + attn(norm1(x))
  Tensor dnorm1;
  attn_.backward(dmid, dnorm1);
  if (use_rms_) {
    rms1_.backward(dnorm1, dx);
  } else {
    ln1_.backward(dnorm1, dx);
  }
  dx.add_(dmid);
}

std::vector<Parameter*> TransformerBlock::parameters() {
  std::vector<Parameter*> out;
  if (use_rms_) {
    out.push_back(&rms1_.gamma());
    out.push_back(&rms2_.gamma());
  } else {
    out.push_back(&ln1_.gamma());
    out.push_back(&ln1_.beta());
    out.push_back(&ln2_.gamma());
    out.push_back(&ln2_.beta());
  }
  for (Parameter* p : attn_.parameters()) out.push_back(p);
  for (Parameter* p : ffn_.parameters()) out.push_back(p);
  return out;
}

std::vector<Linear*> TransformerBlock::linears() {
  std::vector<Linear*> out = attn_.linears();
  for (Linear* l : ffn_.linears()) out.push_back(l);
  return out;
}

namespace {
Rng make_init_rng(const ModelConfig& config) { return Rng(config.init_seed); }
}  // namespace

TransformerLM::TransformerLM(const ModelConfig& config)
    : config_([&] {
        if (config.vocab_size <= 0) throw std::invalid_argument("vocab_size must be set");
        if (config.d_model % config.n_heads != 0) {
          throw std::invalid_argument("d_model must be divisible by n_heads");
        }
        return config;
      }()),
      tok_emb_([&] {
        Rng rng = make_init_rng(config_);
        return Embedding("tok_emb", config_.vocab_size, config_.d_model, rng);
      }()),
      pos_emb_([&] {
        Rng rng(config_.init_seed + 1);
        return Embedding("pos_emb", config_.max_seq, config_.d_model, rng);
      }()),
      final_ln_("final_ln", config_.d_model),
      final_rms_("final_rms", config_.d_model),
      lm_head_([&] {
        Rng rng(config_.init_seed + 2);
        return Linear("lm_head", config_.d_model, config_.vocab_size,
                      /*bias=*/false, rng);
      }()) {
  Rng rng(config_.init_seed + 3);
  blocks_.reserve(static_cast<size_t>(config_.n_layers));
  for (int64_t i = 0; i < config_.n_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        "blocks." + std::to_string(i), config_, rng));
  }
}

void TransformerLM::forward_hidden(std::span<const TokenId> tokens, int64_t batch,
                                   int64_t seq) {
  if (seq > config_.max_seq) {
    throw std::invalid_argument("sequence length exceeds model max_seq");
  }
  batch_ = batch;
  seq_ = seq;
  cached_tokens_.assign(tokens.begin(), tokens.end());

  Tensor x;
  tok_emb_.forward(tokens, x);
  if (config_.family == ArchFamily::kOptStyle) {
    cached_positions_.resize(tokens.size());
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < seq; ++t) {
        cached_positions_[static_cast<size_t>(b * seq + t)] = static_cast<TokenId>(t);
      }
    }
    Tensor pos;
    pos_emb_.forward(cached_positions_, pos);
    x.add_(pos);
  }

  for (auto& block : blocks_) {
    Tensor y;
    block->forward(x, batch, seq, y);
    x = std::move(y);
  }
  hidden_ = std::move(x);
  if (config_.family == ArchFamily::kLlamaStyle) {
    final_rms_.forward(hidden_, final_normed_);
  } else {
    final_ln_.forward(hidden_, final_normed_);
  }
  lm_head_.forward(final_normed_, logits_);
}

LossStats TransformerLM::forward_loss(const Batch& batch) {
  forward_hidden(batch.inputs, batch.batch_size, batch.seq_len);
  cached_targets_ = batch.targets;

  LossStats stats;
  phaseprof::ScopedTimer timer(phaseprof::Phase::kSoftmaxNll);
  const int64_t rows = batch.batch_size * batch.seq_len;
  std::vector<float> logp(static_cast<size_t>(config_.vocab_size));
  for (int64_t i = 0; i < rows; ++i) {
    const TokenId target = cached_targets_[static_cast<size_t>(i)];
    if (target < 0) continue;
    log_softmax({logits_.data() + i * config_.vocab_size,
                 static_cast<size_t>(config_.vocab_size)},
                logp);
    stats.nll_sum -= logp[static_cast<size_t>(target)];
    stats.tokens += 1;
  }
  return stats;
}

void TransformerLM::backward() {
  const int64_t rows = batch_ * seq_;
  int64_t count = 0;
  for (TokenId t : cached_targets_) {
    if (t >= 0) ++count;
  }
  if (count == 0) return;

  // dL/dlogits = (softmax - onehot) / count on real targets, 0 on padding.
  Tensor dlogits({rows, config_.vocab_size});
  const float inv = 1.0f / static_cast<float>(count);
  for (int64_t i = 0; i < rows; ++i) {
    const TokenId target = cached_targets_[static_cast<size_t>(i)];
    if (target < 0) continue;
    float* drow = dlogits.data() + i * config_.vocab_size;
    const float* lrow = logits_.data() + i * config_.vocab_size;
    // softmax(lrow) into drow
    float hi = lrow[0];
    for (int64_t j = 1; j < config_.vocab_size; ++j) hi = std::max(hi, lrow[j]);
    float total = 0.0f;
    for (int64_t j = 0; j < config_.vocab_size; ++j) {
      drow[j] = std::exp(lrow[j] - hi);
      total += drow[j];
    }
    const float norm = 1.0f / total;
    for (int64_t j = 0; j < config_.vocab_size; ++j) drow[j] *= norm * inv;
    drow[target] -= inv;
  }

  Tensor dfinal;
  lm_head_.backward(dlogits, dfinal);
  Tensor dhidden;
  if (config_.family == ArchFamily::kLlamaStyle) {
    final_rms_.backward(dfinal, dhidden);
  } else {
    final_ln_.backward(dfinal, dhidden);
  }

  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    Tensor dx;
    (*it)->backward(dhidden, dx);
    dhidden = std::move(dx);
  }

  tok_emb_.backward(cached_tokens_, dhidden);
  if (config_.family == ArchFamily::kOptStyle) {
    pos_emb_.backward(cached_positions_, dhidden);
  }
}

Tensor TransformerLM::logits(std::span<const TokenId> tokens) {
  forward_hidden(tokens, /*batch=*/1, static_cast<int64_t>(tokens.size()));
  return logits_;
}

double TransformerLM::option_logprob(const std::vector<TokenId>& context,
                                     const std::vector<TokenId>& option) {
  if (context.empty()) throw std::invalid_argument("option_logprob: empty context");
  std::vector<TokenId> seq = context;
  seq.insert(seq.end(), option.begin(), option.end());
  const Tensor all_logits = logits(seq);

  double total = 0.0;
  std::vector<float> logp(static_cast<size_t>(config_.vocab_size));
  // Logits at position i predict token i+1; option tokens sit at positions
  // [context.size(), seq.size()).
  for (size_t i = context.size(); i < seq.size(); ++i) {
    const int64_t row = static_cast<int64_t>(i) - 1;
    log_softmax({all_logits.data() + row * config_.vocab_size,
                 static_cast<size_t>(config_.vocab_size)},
                logp);
    total += logp[static_cast<size_t>(seq[i])];
  }
  return total;
}

std::vector<Parameter*> TransformerLM::parameters() {
  std::vector<Parameter*> out;
  out.push_back(&tok_emb_.table());
  if (config_.family == ArchFamily::kOptStyle) out.push_back(&pos_emb_.table());
  for (auto& block : blocks_) {
    for (Parameter* p : block->parameters()) out.push_back(p);
  }
  if (config_.family == ArchFamily::kLlamaStyle) {
    out.push_back(&final_rms_.gamma());
  } else {
    out.push_back(&final_ln_.gamma());
    out.push_back(&final_ln_.beta());
  }
  for (Parameter* p : lm_head_.parameters()) out.push_back(p);
  return out;
}

int64_t TransformerLM::parameter_count() {
  int64_t total = 0;
  for (Parameter* p : parameters()) total += p->numel();
  return total;
}

std::vector<LinearRef> TransformerLM::quantizable_linears() {
  std::vector<LinearRef> out;
  for (auto& block : blocks_) {
    for (Linear* l : block->linears()) out.push_back({l->name(), l});
  }
  out.push_back({lm_head_.name(), &lm_head_});
  return out;
}

std::unique_ptr<TransformerLM> TransformerLM::clone() const {
  auto copy = std::make_unique<TransformerLM>(config_);
  auto* self = const_cast<TransformerLM*>(this);  // parameters() is non-const
  auto src = self->parameters();
  auto dst = copy->parameters();
  if (src.size() != dst.size()) throw std::logic_error("clone: parameter count mismatch");
  for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  return copy;
}

void TransformerLM::attach_lora_all(int64_t rank, float alpha, uint64_t seed) {
  uint64_t salt = 0;
  for (LinearRef& ref : quantizable_linears()) {
    ref.linear->set_frozen(true);
    ref.linear->attach_lora(rank, alpha, seed + (++salt));
  }
}

namespace {
constexpr const char* kCheckpointMagic = "EMMCKPT";
constexpr uint32_t kCheckpointVersion = 2;
}  // namespace

void TransformerLM::save(const std::string& path) const {
  BinaryWriter writer(path, kCheckpointMagic, kCheckpointVersion);
  config_.save(writer);
  auto* self = const_cast<TransformerLM*>(this);
  auto params = self->parameters();
  writer.write_u64(params.size());
  for (Parameter* p : params) {
    writer.write_string(p->name);
    p->value.save(writer);
  }
  writer.close();
}

std::unique_ptr<TransformerLM> TransformerLM::load(const std::string& path) {
  BinaryReader reader(path, kCheckpointMagic, kCheckpointVersion);
  const ModelConfig config = ModelConfig::load(reader);
  auto model = std::make_unique<TransformerLM>(config);
  auto params = model->parameters();
  const uint64_t count = reader.read_u64();
  if (count != params.size()) {
    throw SerializeError("checkpoint parameter count mismatch in " + path);
  }
  for (Parameter* p : params) {
    const std::string name = reader.read_string();
    if (name != p->name) {
      throw SerializeError("checkpoint parameter order mismatch: " + name +
                           " vs " + p->name);
    }
    Tensor value = Tensor::load(reader);
    if (!value.same_shape(p->value)) {
      throw SerializeError("checkpoint shape mismatch for " + name);
    }
    p->value = std::move(value);
  }
  return model;
}

}  // namespace emmark
