#include "nn/sampler.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace emmark {

TokenId Sampler::next_token(std::span<const float> logits,
                            const SampleConfig& config, Rng& rng) const {
  if (config.temperature <= 0.0) {
    return static_cast<TokenId>(argmax(logits));
  }
  std::vector<float> scaled(logits.begin(), logits.end());
  for (float& v : scaled) v = static_cast<float>(v / config.temperature);
  if (config.top_k > 0 && config.top_k < static_cast<int64_t>(scaled.size())) {
    std::vector<float> sorted = scaled;
    std::nth_element(sorted.begin(),
                     sorted.begin() + (config.top_k - 1), sorted.end(),
                     std::greater<float>());
    const float cutoff = sorted[static_cast<size_t>(config.top_k - 1)];
    for (float& v : scaled) {
      if (v < cutoff) v = -1e30f;
    }
  }
  softmax_inplace(scaled);
  std::vector<double> weights(scaled.begin(), scaled.end());
  return static_cast<TokenId>(rng.next_weighted(weights));
}

std::vector<TokenId> Sampler::sample(const std::vector<TokenId>& prompt,
                                     const SampleConfig& config) {
  if (prompt.empty()) throw std::invalid_argument("sample: empty prompt");
  Rng rng(config.seed);
  std::vector<TokenId> sequence = prompt;
  std::vector<TokenId> continuation;
  const int64_t max_seq = model_.config().max_seq;
  for (int64_t step = 0; step < config.max_tokens; ++step) {
    // Keep the most recent max_seq tokens as context.
    const int64_t begin =
        std::max<int64_t>(0, static_cast<int64_t>(sequence.size()) - max_seq);
    const std::vector<TokenId> window(sequence.begin() + begin, sequence.end());
    const Tensor logits = model_.logits(window);
    const int64_t last = logits.dim(0) - 1;
    const TokenId token = next_token(
        {logits.data() + last * logits.dim(1), static_cast<size_t>(logits.dim(1))},
        config, rng);
    sequence.push_back(token);
    continuation.push_back(token);
    if (token == config.stop_token) break;
  }
  return continuation;
}

std::string Sampler::sample_text(const Vocab& vocab,
                                 const std::vector<TokenId>& prompt,
                                 const SampleConfig& config) {
  return vocab.render(sample(prompt, config));
}

double Sampler::grammaticality(const Vocab& vocab,
                               const std::vector<TokenId>& tokens) {
  // Scan subject..verb pairs: "the [adj] NOUN [prep the NOUN] VERB".
  // Verb number must match the head noun's number.
  int64_t sentences = 0;
  int64_t agree = 0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const auto cat = vocab.category(tokens[i]);
    const bool head_noun = cat == TokenCategory::kNounSingular ||
                           cat == TokenCategory::kNounPlural;
    if (!head_noun) continue;
    // Only treat as a subject if preceded by a determiner (possibly via an
    // adjective).
    if (i == 0) continue;
    const auto prev = vocab.category(tokens[i - 1]);
    if (prev != TokenCategory::kDeterminer && prev != TokenCategory::kAdjective) {
      continue;
    }
    // Find the verb: either immediately after, or after a PP attractor.
    size_t v = i + 1;
    if (v < tokens.size() && vocab.category(tokens[v]) == TokenCategory::kPreposition) {
      v += 3;  // prep + det + noun
    }
    if (v >= tokens.size()) break;
    const auto verb_cat = vocab.category(tokens[v]);
    const bool is_verb = verb_cat == TokenCategory::kVerbSingular ||
                         verb_cat == TokenCategory::kVerbPlural ||
                         verb_cat == TokenCategory::kVerbIntransSingular ||
                         verb_cat == TokenCategory::kVerbIntransPlural;
    if (!is_verb) continue;
    ++sentences;
    const bool plural_subject = cat == TokenCategory::kNounPlural;
    const bool plural_verb = verb_cat == TokenCategory::kVerbPlural ||
                             verb_cat == TokenCategory::kVerbIntransPlural;
    if (plural_subject == plural_verb) ++agree;
    i = v;  // continue past the verb
  }
  if (sentences == 0) return -1.0;
  return static_cast<double>(agree) / static_cast<double>(sentences);
}

}  // namespace emmark
