// Fully-connected layer with cached-input backward pass.
//
// Weights are stored row-major [out_features, in_features] -- the same
// layout the quantization stack (quant/) and the watermark (wm/) operate
// on, so a "quantization layer" in the paper maps 1:1 to one Linear here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/lora.h"
#include "nn/param.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace emmark {

class QuantizedTensor;

class Linear {
 public:
  /// Initializes W ~ N(0, 0.02) (GPT-style) and b = 0 when `bias` is set.
  Linear(std::string name, int64_t in_features, int64_t out_features, bool bias,
         Rng& rng);

  /// y[M, out] = x[M, in] W^T (+ b) (+ LoRA path if attached).
  void forward(const Tensor& x, Tensor& y);

  /// dx[M, in] from dy[M, out]; accumulates dW/db unless the layer is
  /// frozen. Must follow a forward() on the same input.
  void backward(const Tensor& dy, Tensor& dx);

  /// Trainable parameters: base W/b when not frozen, plus LoRA A/B.
  std::vector<Parameter*> parameters();

  /// Attach a LoRA adapter (replaces any existing one).
  void attach_lora(int64_t rank, float alpha, uint64_t seed);
  bool has_lora() const { return lora_ != nullptr; }
  LoraAdapter* lora() { return lora_.get(); }

  /// Frozen layers skip base-weight gradient accumulation (QLoRA-style).
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  /// Evaluation-only fused-dequant mode: subsequent forwards stream `q`'s
  /// int8 codes through dequant_gemm_nt instead of reading W, skipping the
  /// full-tensor dequantize() temporary (bit-identical output -- see
  /// quant/qtensor.h). The layer does not own `q`; the caller keeps it
  /// alive (QuantizedModel::materialize_view). backward() throws in this
  /// mode. Pass nullptr to restore the plain weight path.
  void set_quantized_weight(const QuantizedTensor* q);
  bool has_quantized_weight() const { return qweight_ != nullptr; }

  /// Input of the most recent forward() -- used by activation calibration
  /// (quant/calib.h) to gather per-channel statistics without hooks.
  const Tensor& last_input() const { return cached_x_; }

  const std::string& name() const { return name_; }
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return w_; }
  const Parameter& weight() const { return w_; }
  bool has_bias() const { return has_bias_; }
  Parameter& bias() { return b_; }

 private:
  std::string name_;
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  bool frozen_ = false;
  Parameter w_;  // [out, in]
  Parameter b_;  // [out]
  const QuantizedTensor* qweight_ = nullptr;  // unowned; eval-only fused path
  Tensor cached_x_;
  std::shared_ptr<LoraAdapter> lora_;
};

}  // namespace emmark
