#include "nn/rope.h"

#include <cmath>
#include <stdexcept>

namespace emmark {

Rope::Rope(int64_t head_dim, int64_t max_seq, float base)
    : head_dim_(head_dim), max_seq_(max_seq) {
  if (head_dim % 2 != 0) throw std::invalid_argument("RoPE needs an even head_dim");
  const int64_t half = head_dim / 2;
  cos_.resize(static_cast<size_t>(max_seq * half));
  sin_.resize(static_cast<size_t>(max_seq * half));
  for (int64_t pos = 0; pos < max_seq; ++pos) {
    for (int64_t i = 0; i < half; ++i) {
      const float freq = std::pow(base, -2.0f * static_cast<float>(i) /
                                            static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      cos_[static_cast<size_t>(pos * half + i)] = std::cos(angle);
      sin_[static_cast<size_t>(pos * half + i)] = std::sin(angle);
    }
  }
}

void Rope::apply(std::span<float> vec, int64_t pos, float sign) const {
  if (static_cast<int64_t>(vec.size()) != head_dim_) {
    throw std::invalid_argument("RoPE: vector size != head_dim");
  }
  if (pos < 0 || pos >= max_seq_) throw std::out_of_range("RoPE: position out of range");
  const int64_t half = head_dim_ / 2;
  const float* c = cos_.data() + pos * half;
  const float* s = sin_.data() + pos * half;
  for (int64_t i = 0; i < half; ++i) {
    const float x0 = vec[static_cast<size_t>(2 * i)];
    const float x1 = vec[static_cast<size_t>(2 * i + 1)];
    vec[static_cast<size_t>(2 * i)] = x0 * c[i] - sign * x1 * s[i];
    vec[static_cast<size_t>(2 * i + 1)] = sign * x0 * s[i] + x1 * c[i];
  }
}

void Rope::rotate(std::span<float> vec, int64_t pos) const { apply(vec, pos, 1.0f); }

void Rope::rotate_inverse(std::span<float> vec, int64_t pos) const {
  apply(vec, pos, -1.0f);
}

}  // namespace emmark
