#include "nn/ffn.h"

#include "tensor/ops.h"

namespace emmark {

FeedForward::FeedForward(const std::string& name, FfnKind kind, int64_t d_model,
                         int64_t hidden, bool bias, Rng& rng)
    : kind_(kind),
      d_model_(d_model),
      hidden_(hidden),
      up_(name + ".up_proj", d_model, hidden, bias, rng),
      down_(name + ".down_proj", hidden, d_model, bias, rng),
      gate_(name + ".gate_proj", d_model, hidden, /*bias=*/false, rng),
      has_gate_(kind == FfnKind::kSwiGlu) {}

void FeedForward::forward(const Tensor& x, Tensor& y) {
  up_.forward(x, cached_up_);
  if (kind_ == FfnKind::kRelu) {
    cached_h_ = cached_up_;
    relu_inplace(cached_h_.flat());
  } else {
    gate_.forward(x, cached_gate_);
    cached_h_ = Tensor(cached_up_.shape());
    const float* g = cached_gate_.data();
    const float* u = cached_up_.data();
    float* h = cached_h_.data();
    for (int64_t i = 0; i < cached_h_.numel(); ++i) h[i] = silu(g[i]) * u[i];
  }
  down_.forward(cached_h_, y);
}

void FeedForward::backward(const Tensor& dy, Tensor& dx) {
  Tensor dh;
  down_.backward(dy, dh);
  if (kind_ == FfnKind::kRelu) {
    // Through ReLU: pass where pre-activation > 0.
    const float* pre = cached_up_.data();
    float* d = dh.data();
    for (int64_t i = 0; i < dh.numel(); ++i) {
      if (pre[i] <= 0.0f) d[i] = 0.0f;
    }
    up_.backward(dh, dx);
  } else {
    // h = silu(g) * u
    Tensor dg(cached_gate_.shape());
    Tensor du(cached_up_.shape());
    const float* g = cached_gate_.data();
    const float* u = cached_up_.data();
    const float* d = dh.data();
    float* pdg = dg.data();
    float* pdu = du.data();
    for (int64_t i = 0; i < dh.numel(); ++i) {
      pdg[i] = d[i] * u[i] * silu_grad(g[i]);
      pdu[i] = d[i] * silu(g[i]);
    }
    Tensor dx_gate, dx_up;
    gate_.backward(dg, dx_gate);
    up_.backward(du, dx_up);
    dx = std::move(dx_gate);
    dx.add_(dx_up);
  }
}

std::vector<Parameter*> FeedForward::parameters() {
  std::vector<Parameter*> out;
  for (Linear* l : linears()) {
    for (Parameter* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Linear*> FeedForward::linears() {
  if (has_gate_) return {&gate_, &up_, &down_};
  return {&up_, &down_};
}

}  // namespace emmark
