// LayerNorm (OPT-style blocks) and RMSNorm (LLaMA-style blocks), both with
// full backward passes.
#pragma once

#include <string>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace emmark {

/// y = (x - mean) / sqrt(var + eps) * gamma + beta, per row.
class LayerNorm {
 public:
  LayerNorm(std::string name, int64_t dim, float eps = 1e-5f);

  void forward(const Tensor& x, Tensor& y);
  void backward(const Tensor& dy, Tensor& dx);

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  std::string name_;
  int64_t dim_;
  float eps_;
  Parameter gamma_;  // [dim]
  Parameter beta_;   // [dim]
  Tensor cached_norm_;  // normalized x, [M, dim]
  Tensor cached_rstd_;  // [M]
};

/// y = x / rms(x) * gamma, per row (no centering, no bias).
class RmsNorm {
 public:
  RmsNorm(std::string name, int64_t dim, float eps = 1e-5f);

  void forward(const Tensor& x, Tensor& y);
  void backward(const Tensor& dy, Tensor& dx);

  Parameter& gamma() { return gamma_; }

 private:
  std::string name_;
  int64_t dim_;
  float eps_;
  Parameter gamma_;     // [dim]
  Tensor cached_x_;     // [M, dim]
  Tensor cached_rrms_;  // [M]
};

}  // namespace emmark
