// Decoder-only transformer language models in two architecture families:
//
//   kOptStyle   : learned positional embeddings, LayerNorm, ReLU FFN,
//                 biased projections -- a scaled-down OPT.
//   kLlamaStyle : RoPE, RMSNorm, SwiGLU FFN, bias-free projections -- a
//                 scaled-down LLaMA-2.
//
// Both use pre-norm residual blocks and an untied LM head. Forward/backward
// are hand-written; activations flow as rank-2 [B*T, D] tensors.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/vocab.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/ffn.h"
#include "nn/norm.h"
#include "util/serialize.h"

namespace emmark {

enum class ArchFamily { kOptStyle, kLlamaStyle };

const char* to_string(ArchFamily family);

struct ModelConfig {
  ArchFamily family = ArchFamily::kOptStyle;
  int64_t vocab_size = 0;
  int64_t d_model = 64;
  int64_t n_layers = 2;
  int64_t n_heads = 2;
  int64_t ffn_hidden = 128;
  int64_t max_seq = 64;
  uint64_t init_seed = 1;

  int64_t head_dim() const { return d_model / n_heads; }
  void save(BinaryWriter& w) const;
  static ModelConfig load(BinaryReader& r);
};

/// A named reference to one quantizable weight matrix ("quantization layer"
/// in the paper's terms).
struct LinearRef {
  std::string name;
  Linear* linear = nullptr;
};

/// Result of a loss forward pass.
struct LossStats {
  double nll_sum = 0.0;   // summed negative log-likelihood over real targets
  int64_t tokens = 0;     // number of real (non-padding) targets

  double mean_nll() const { return tokens > 0 ? nll_sum / static_cast<double>(tokens) : 0.0; }
};

class TransformerBlock {
 public:
  TransformerBlock(const std::string& name, const ModelConfig& config, Rng& rng);

  void forward(const Tensor& x, int64_t batch, int64_t seq, Tensor& y);
  void backward(const Tensor& dy, Tensor& dx);

  std::vector<Parameter*> parameters();
  std::vector<Linear*> linears();

 private:
  // Exactly one of each norm pair is active per family; both are
  // constructed to keep the type simple, only the active ones own
  // parameters that are exposed.
  bool use_rms_;
  LayerNorm ln1_, ln2_;
  RmsNorm rms1_, rms2_;
  MultiHeadAttention attn_;
  FeedForward ffn_;

  Tensor cached_norm1_, cached_attn_, cached_norm2_, cached_ffn_;
  Tensor cached_mid_;  // x + attn output (input to second sub-block)
};

class TransformerLM {
 public:
  explicit TransformerLM(const ModelConfig& config);

  // -- training ---------------------------------------------------------
  /// Forward pass computing mean NLL over batch targets (targets of -1 are
  /// padding and excluded). Caches everything needed by backward().
  LossStats forward_loss(const Batch& batch);
  /// Backpropagates from the last forward_loss() into parameter grads.
  void backward();

  // -- inference --------------------------------------------------------
  /// Logits [T, vocab] for a single sequence.
  Tensor logits(std::span<const TokenId> tokens);
  /// Sum of log P(option | context) under teacher forcing.
  double option_logprob(const std::vector<TokenId>& context,
                        const std::vector<TokenId>& option);

  // -- structure --------------------------------------------------------
  std::vector<Parameter*> parameters();
  int64_t parameter_count();
  /// All quantizable weight matrices, in deterministic order:
  /// per block (q, k, v, o, [gate,] up, down), then lm_head.
  std::vector<LinearRef> quantizable_linears();
  const ModelConfig& config() const { return config_; }

  /// Deep copy (caches included but irrelevant).
  std::unique_ptr<TransformerLM> clone() const;

  /// QLoRA-style setup: freeze every linear and attach LoRA adapters.
  void attach_lora_all(int64_t rank, float alpha, uint64_t seed);

  // -- persistence ------------------------------------------------------
  void save(const std::string& path) const;
  static std::unique_ptr<TransformerLM> load(const std::string& path);

 private:
  void forward_hidden(std::span<const TokenId> tokens, int64_t batch, int64_t seq);

  ModelConfig config_;
  Embedding tok_emb_;
  Embedding pos_emb_;  // OPT-style only
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
  RmsNorm final_rms_;
  Linear lm_head_;

  // caches
  int64_t batch_ = 0, seq_ = 0;
  std::vector<TokenId> cached_tokens_;
  std::vector<TokenId> cached_positions_;
  Tensor hidden_;        // final pre-norm hidden [B*T, D]
  Tensor final_normed_;  // [B*T, D]
  Tensor logits_;        // [B*T, V]
  std::vector<TokenId> cached_targets_;
};

}  // namespace emmark
