// Feed-forward blocks: ReLU MLP (OPT-style) and SwiGLU (LLaMA-style).
#pragma once

#include <string>
#include <vector>

#include "nn/linear.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace emmark {

enum class FfnKind { kRelu, kSwiGlu };

class FeedForward {
 public:
  FeedForward(const std::string& name, FfnKind kind, int64_t d_model,
              int64_t hidden, bool bias, Rng& rng);

  void forward(const Tensor& x, Tensor& y);
  void backward(const Tensor& dy, Tensor& dx);

  std::vector<Parameter*> parameters();
  /// Quantizable projections: (up, down) for ReLU; (gate, up, down) for SwiGLU.
  std::vector<Linear*> linears();

  FfnKind kind() const { return kind_; }

 private:
  FfnKind kind_;
  int64_t d_model_;
  int64_t hidden_;
  Linear up_;
  Linear down_;
  Linear gate_;  // SwiGLU only (constructed for both kinds, unused for ReLU)
  bool has_gate_;

  Tensor cached_up_;    // pre-activation (ReLU) or up-branch value (SwiGLU)
  Tensor cached_gate_;  // SwiGLU gate pre-activation
  Tensor cached_h_;     // post-activation hidden
};

}  // namespace emmark
