#include "nn/lora.h"

#include "tensor/gemm.h"
#include "util/rng.h"

namespace emmark {

LoraAdapter::LoraAdapter(const std::string& base_name, int64_t in_features,
                         int64_t out_features, int64_t rank, float alpha,
                         uint64_t seed)
    : in_features_(in_features),
      out_features_(out_features),
      rank_(rank),
      scale_(alpha / static_cast<float>(rank)) {
  Tensor a({rank, in_features});
  Rng rng(seed);
  for (float& v : a.flat()) v = rng.next_normal_f(0.0f, 0.02f);
  a_ = Parameter(base_name + ".lora_a", std::move(a));
  // B starts at zero so the adapter is an exact no-op before training.
  b_ = Parameter(base_name + ".lora_b", Tensor({out_features, rank}));
}

void LoraAdapter::forward(const Tensor& x, Tensor& y) {
  const int64_t m = x.dim(0);
  cached_x_ = x;
  cached_xa_ = Tensor({m, rank_});
  gemm_nt(x.data(), a_.value.data(), cached_xa_.data(), m, in_features_, rank_);
  // y += scale * (xA^T) B^T
  Tensor xab({m, out_features_});
  gemm_nt(cached_xa_.data(), b_.value.data(), xab.data(), m, rank_, out_features_);
  y.axpy_(scale_, xab);
}

void LoraAdapter::backward(const Tensor& dy, Tensor& dx) {
  const int64_t m = dy.dim(0);
  // d(xa) = scale * dy B : [M, rank]
  Tensor dxa({m, rank_});
  gemm_nn(dy.data(), b_.value.data(), dxa.data(), m, out_features_, rank_);
  dxa.scale_(scale_);
  // dB += scale * dy^T (xA^T) : [out, rank]
  Tensor db({out_features_, rank_});
  gemm_tn(dy.data(), cached_xa_.data(), db.data(), out_features_, m, rank_);
  db.scale_(scale_);
  b_.grad.add_(db);
  // dA += dxa^T x : [rank, in]
  gemm_tn(dxa.data(), cached_x_.data(), a_.grad.data(), rank_, m, in_features_,
          /*accumulate=*/true);
  // dx += dxa A : [M, in]
  gemm_nn(dxa.data(), a_.value.data(), dx.data(), m, rank_, in_features_,
          /*accumulate=*/true);
}

}  // namespace emmark
