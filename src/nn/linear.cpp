#include "nn/linear.h"

#include "quant/qtensor.h"
#include "tensor/gemm.h"

namespace emmark {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               bool bias, Rng& rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  Tensor w({out_features, in_features});
  for (float& v : w.flat()) v = rng.next_normal_f(0.0f, 0.02f);
  w_ = Parameter(name_ + ".weight", std::move(w));
  if (has_bias_) b_ = Parameter(name_ + ".bias", Tensor({out_features}));
}

void Linear::forward(const Tensor& x, Tensor& y) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw TensorError("Linear " + name_ + ": bad input shape " + x.shape_string());
  }
  const int64_t m = x.dim(0);
  // The input cache only feeds backward() and calibration, both of which
  // run on FP models; fused quantized-weight views are eval-only (backward
  // throws below), so skipping the deep copy there trims a per-layer
  // O(batch * in_features) memcpy off the batched eval path.
  if (qweight_ == nullptr) cached_x_ = x;
  y = Tensor({m, out_features_});
  if (qweight_ != nullptr) {
    dequant_gemm_nt(x.data(), *qweight_, y.data(), m);
  } else {
    gemm_nt(x.data(), w_.value.data(), y.data(), m, in_features_, out_features_);
  }
  if (has_bias_) {
    const float* b = b_.value.data();
    for (int64_t i = 0; i < m; ++i) {
      float* row = y.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += b[j];
    }
  }
  if (lora_) lora_->forward(x, y);
}

void Linear::backward(const Tensor& dy, Tensor& dx) {
  if (qweight_ != nullptr) {
    throw TensorError("Linear " + name_ +
                      ": backward through a fused quantized-weight view");
  }
  const int64_t m = dy.dim(0);
  dx = Tensor({m, in_features_});
  gemm_nn(dy.data(), w_.value.data(), dx.data(), m, out_features_, in_features_);
  if (!frozen_) {
    // dW += dy^T x
    gemm_tn(dy.data(), cached_x_.data(), w_.grad.data(), out_features_, m,
            in_features_, /*accumulate=*/true);
    if (has_bias_) {
      float* db = b_.grad.data();
      for (int64_t i = 0; i < m; ++i) {
        const float* row = dy.data() + i * out_features_;
        for (int64_t j = 0; j < out_features_; ++j) db[j] += row[j];
      }
    }
  }
  if (lora_) lora_->backward(dy, dx);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> out;
  if (!frozen_) {
    out.push_back(&w_);
    if (has_bias_) out.push_back(&b_);
  }
  if (lora_) {
    out.push_back(&lora_->a());
    out.push_back(&lora_->b());
  }
  return out;
}

void Linear::set_quantized_weight(const QuantizedTensor* q) {
  if (q != nullptr &&
      (q->rows() != out_features_ || q->cols() != in_features_)) {
    throw TensorError("Linear " + name_ + ": quantized weight shape mismatch");
  }
  qweight_ = q;
}

void Linear::attach_lora(int64_t rank, float alpha, uint64_t seed) {
  lora_ = std::make_shared<LoraAdapter>(name_, in_features_, out_features_, rank,
                                        alpha, seed);
}

}  // namespace emmark
