// Adam optimizer with global-norm gradient clipping.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.h"

namespace emmark {

struct AdamConfig {
  double beta1 = 0.9;
  double beta2 = 0.95;
  double eps = 1e-8;
  double weight_decay = 0.0;
  double clip_norm = 1.0;  // <= 0 disables clipping
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// One update with learning rate `lr`; gradients are consumed (zeroed).
  void step(double lr);

  void zero_grad();

  /// Global gradient norm before the last clip (diagnostic).
  double last_grad_norm() const { return last_grad_norm_; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t t_ = 0;
  double last_grad_norm_ = 0.0;
};

}  // namespace emmark
