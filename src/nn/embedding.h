// Token and learned positional embeddings.
#pragma once

#include <span>
#include <string>

#include "data/vocab.h"
#include "nn/param.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace emmark {

class Embedding {
 public:
  Embedding(std::string name, int64_t num_embeddings, int64_t dim, Rng& rng);

  /// Gathers rows: y[i, :] = table[tokens[i], :].
  void forward(std::span<const TokenId> tokens, Tensor& y);

  /// Scatter-adds dy rows into the gradient. `tokens` must match forward.
  void backward(std::span<const TokenId> tokens, const Tensor& dy);

  Parameter& table() { return table_; }
  int64_t dim() const { return dim_; }
  int64_t num_embeddings() const { return num_embeddings_; }

 private:
  std::string name_;
  int64_t num_embeddings_;
  int64_t dim_;
  Parameter table_;  // [num_embeddings, dim]
};

}  // namespace emmark
