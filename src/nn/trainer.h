// Language-model training loop: Adam + linear-warmup/cosine-decay schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "nn/transformer.h"

namespace emmark {

struct TrainConfig {
  int64_t steps = 1200;
  int64_t batch_size = 8;
  int64_t seq_len = 32;
  double lr = 3e-3;
  double warmup_fraction = 0.05;
  double min_lr_fraction = 0.1;
  uint64_t seed = 17;
  int64_t log_every = 0;  // 0 = silent
};

class Trainer {
 public:
  Trainer(TransformerLM& model, const std::vector<TokenId>& train_stream,
          TrainConfig config);

  /// Runs the configured number of steps; returns the final running loss.
  double train();

  /// LR at a given step under warmup + cosine decay.
  double lr_at(int64_t step) const;

 private:
  TransformerLM& model_;
  const std::vector<TokenId>& stream_;
  TrainConfig config_;
};

}  // namespace emmark
