// Rotary positional embedding (RoPE) used by the LLaMA-style family.
//
// Pairs (x[2i], x[2i+1]) of each head vector are rotated by an angle
// theta_i * pos; the backward pass is the inverse rotation, which keeps the
// implementation exactly self-adjoint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace emmark {

class Rope {
 public:
  Rope(int64_t head_dim, int64_t max_seq, float base = 10000.0f);

  /// Rotates `vec` (one head at one position) in place.
  void rotate(std::span<float> vec, int64_t pos) const;
  /// Applies the inverse rotation (used for gradients).
  void rotate_inverse(std::span<float> vec, int64_t pos) const;

  int64_t head_dim() const { return head_dim_; }
  int64_t max_seq() const { return max_seq_; }

 private:
  void apply(std::span<float> vec, int64_t pos, float sign) const;

  int64_t head_dim_;
  int64_t max_seq_;
  std::vector<float> cos_;  // [max_seq * head_dim/2]
  std::vector<float> sin_;
};

}  // namespace emmark
