#include "nn/trainer.h"

#include <cmath>
#include <numbers>

#include "nn/adam.h"
#include "util/log.h"

namespace emmark {

Trainer::Trainer(TransformerLM& model, const std::vector<TokenId>& train_stream,
                 TrainConfig config)
    : model_(model), stream_(train_stream), config_(config) {}

double Trainer::lr_at(int64_t step) const {
  const double warmup = std::max(1.0, config_.warmup_fraction *
                                          static_cast<double>(config_.steps));
  if (static_cast<double>(step) < warmup) {
    return config_.lr * (static_cast<double>(step) + 1.0) / warmup;
  }
  const double progress =
      (static_cast<double>(step) - warmup) /
      std::max(1.0, static_cast<double>(config_.steps) - warmup);
  const double floor = config_.lr * config_.min_lr_fraction;
  return floor + 0.5 * (config_.lr - floor) *
                     (1.0 + std::cos(std::numbers::pi * progress));
}

double Trainer::train() {
  Adam optimizer(model_.parameters());
  Rng rng(config_.seed);
  double running_loss = 0.0;
  bool have_running = false;
  for (int64_t step = 0; step < config_.steps; ++step) {
    const Batch batch =
        sample_batch(stream_, config_.batch_size, config_.seq_len, rng);
    const LossStats stats = model_.forward_loss(batch);
    model_.backward();
    optimizer.step(lr_at(step));

    const double loss = stats.mean_nll();
    running_loss = have_running ? 0.95 * running_loss + 0.05 * loss : loss;
    have_running = true;
    if (config_.log_every > 0 && (step + 1) % config_.log_every == 0) {
      EMMARK_INFO("step %lld/%lld loss %.4f lr %.2e",
                  static_cast<long long>(step + 1),
                  static_cast<long long>(config_.steps), running_loss,
                  lr_at(step));
    }
  }
  return running_loss;
}

}  // namespace emmark
