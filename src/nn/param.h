// Trainable parameter: a value tensor plus its gradient accumulator.
#pragma once

#include <string>
#include <utility>

#include "tensor/tensor.h"

namespace emmark {

struct Parameter {
  Parameter() = default;
  Parameter(std::string name, Tensor value)
      : name(std::move(name)), value(std::move(value)) {
    grad = Tensor(this->value.shape());
  }

  void zero_grad() { grad.zero(); }
  int64_t numel() const { return value.numel(); }

  std::string name;
  Tensor value;
  Tensor grad;
};

}  // namespace emmark
