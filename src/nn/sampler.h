// Autoregressive text sampling from a TransformerLM.
//
// Used by examples and the attack benches to show *what the model says*
// before and after an attack -- a pruned embedded model does not just lose
// perplexity points, it stops producing grammatical sentences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace emmark {

struct SampleConfig {
  int64_t max_tokens = 24;
  /// 0 = greedy decoding; otherwise softmax temperature.
  double temperature = 0.0;
  /// Keep only the k most likely tokens before sampling (0 = all).
  int64_t top_k = 0;
  uint64_t seed = 1;
  /// Stop once this token is produced (-1 = never stop early).
  TokenId stop_token = -1;
};

class Sampler {
 public:
  explicit Sampler(TransformerLM& model) : model_(model) {}

  /// Extends `prompt` by up to max_tokens; returns only the continuation.
  std::vector<TokenId> sample(const std::vector<TokenId>& prompt,
                              const SampleConfig& config);

  /// Convenience: sample and render through a vocabulary.
  std::string sample_text(const Vocab& vocab, const std::vector<TokenId>& prompt,
                          const SampleConfig& config);

  /// Fraction of sampled sentences (ending in the period token) whose verb
  /// agrees with the subject -- a cheap grammaticality score used by the
  /// breakdown demos. Returns values in [0, 1]; -1 when no sentence was
  /// completed.
  static double grammaticality(const Vocab& vocab,
                               const std::vector<TokenId>& tokens);

 private:
  TokenId next_token(std::span<const float> logits, const SampleConfig& config,
                     Rng& rng) const;

  TransformerLM& model_;
};

}  // namespace emmark
