// Corpus container and batching for language-model training/evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "data/grammar.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace emmark {

/// Train/valid/test token streams over a shared vocabulary.
struct Corpus {
  std::vector<TokenId> train;
  std::vector<TokenId> valid;
  std::vector<TokenId> test;
};

struct CorpusConfig {
  int64_t train_tokens = 120'000;
  int64_t valid_tokens = 12'000;
  int64_t test_tokens = 12'000;
  uint64_t seed = 7;
  GrammarStyle style = default_style();
};

/// Samples disjoint RNG streams for the three splits.
Corpus make_corpus(const Vocab& vocab, const CorpusConfig& config);

/// One training minibatch: inputs[b][t] predicts targets[b][t].
struct Batch {
  int64_t batch_size = 0;
  int64_t seq_len = 0;
  std::vector<TokenId> inputs;   // [batch_size * seq_len]
  std::vector<TokenId> targets;  // [batch_size * seq_len]
};

/// Samples `batch_size` random windows of `seq_len`+1 tokens from `stream`.
Batch sample_batch(const std::vector<TokenId>& stream, int64_t batch_size,
                   int64_t seq_len, Rng& rng);

/// Deterministically tiles `stream` into consecutive windows (for eval).
/// Returns ceil((len-1)/seq_len) rows of exactly seq_len (last row padded by
/// truncation: it is dropped if shorter than 2 tokens).
std::vector<Batch> tile_eval_batches(const std::vector<TokenId>& stream,
                                     int64_t batch_size, int64_t seq_len);

}  // namespace emmark
