// Synthetic zero-shot evaluation tasks.
//
// The paper reports the mean zero-shot accuracy over LAMBADA, HellaSwag,
// PIQA and WinoGrande, all scored by ranking answer options with the
// model's likelihood. We reproduce the *mechanics* with four synthetic
// multiple-choice suites over the SynthText grammar:
//
//   s-lambada    : predict the held-out final content word of a sentence
//                  (1 grammatical option + 3 wrong-category distractors)
//   s-hellaswag  : choose the grammatical continuation of a sentence prefix
//                  among 1 real + 3 shuffled continuations
//   s-piqa       : choose the sentence respecting determiner/prep structure
//                  (swapped-role distractor)
//   s-winogrande : binary choice of the verb agreeing with a pronoun's
//                  antecedent ("the cats sleep . they run/runs")
//
// Accuracy of a trained model is far above chance; corrupting quantized
// weights pushes it back toward chance -- the same sensitivity the paper's
// Table 1 and Figure 2 rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/grammar.h"
#include "data/vocab.h"
#include "util/rng.h"

namespace emmark {

/// One multiple-choice item: rank `options` as continuations of `context`;
/// option `correct` is the grammatical one.
struct TaskItem {
  std::vector<TokenId> context;
  std::vector<std::vector<TokenId>> options;
  int64_t correct = 0;
};

struct TaskSet {
  std::string name;
  std::vector<TaskItem> items;
  double chance_accuracy = 0.0;
};

/// All four suites with `items_per_task` items each, from one seed.
std::vector<TaskSet> make_task_suite(const Vocab& vocab, int64_t items_per_task,
                                     uint64_t seed);

TaskSet make_lambada_like(const Vocab& vocab, int64_t items, Rng& rng);
TaskSet make_hellaswag_like(const Vocab& vocab, int64_t items, Rng& rng);
TaskSet make_piqa_like(const Vocab& vocab, int64_t items, Rng& rng);
TaskSet make_winogrande_like(const Vocab& vocab, int64_t items, Rng& rng);

}  // namespace emmark
