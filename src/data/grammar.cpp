#include "data/grammar.h"

#include <cmath>

namespace emmark {

GrammarStyle default_style() { return GrammarStyle{}; }

GrammarStyle shifted_style_a() {
  GrammarStyle s;
  s.plural_probability = 0.25;
  s.adjective_probability = 0.8;
  s.transitive_probability = 0.7;
  s.adverb_probability = 0.15;
  s.preposition_probability = 0.1;
  s.pronoun_followup_probability = 0.6;
  s.noun_skew = 1.2;
  return s;
}

GrammarStyle shifted_style_b() {
  GrammarStyle s;
  s.plural_probability = 0.7;
  s.adjective_probability = 0.2;
  s.transitive_probability = 0.3;
  s.adverb_probability = 0.6;
  s.preposition_probability = 0.55;
  s.pronoun_followup_probability = 0.15;
  s.noun_skew = 0.7;
  return s;
}

GrammarSampler::GrammarSampler(const Vocab& vocab, GrammarStyle style)
    : vocab_(vocab), style_(style) {
  nouns_sing_ = vocab.tokens_of(TokenCategory::kNounSingular);
  nouns_plur_ = vocab.tokens_of(TokenCategory::kNounPlural);
  verbs_t_sing_ = vocab.tokens_of(TokenCategory::kVerbSingular);
  verbs_t_plur_ = vocab.tokens_of(TokenCategory::kVerbPlural);
  verbs_i_sing_ = vocab.tokens_of(TokenCategory::kVerbIntransSingular);
  verbs_i_plur_ = vocab.tokens_of(TokenCategory::kVerbIntransPlural);
  adjectives_ = vocab.tokens_of(TokenCategory::kAdjective);
  adverbs_ = vocab.tokens_of(TokenCategory::kAdverb);
  prepositions_ = vocab.tokens_of(TokenCategory::kPreposition);
  determiners_ = vocab.tokens_of(TokenCategory::kDeterminer);
  period_ = vocab.tokens_of(TokenCategory::kPunct).at(0);
  pronoun_sing_ = vocab.tokens_of(TokenCategory::kPronounSingular).at(0);
  pronoun_plur_ = vocab.tokens_of(TokenCategory::kPronounPlural).at(0);
}

TokenId GrammarSampler::sample_noun(Rng& rng, GrammarNumber number) const {
  const auto& pool = number == GrammarNumber::kSingular ? nouns_sing_ : nouns_plur_;
  if (style_.noun_skew <= 0.0) {
    return pool[rng.next_below(pool.size())];
  }
  // Zipf-like weights: w_i = (i+1)^-skew.
  std::vector<double> weights(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -style_.noun_skew);
  }
  return pool[rng.next_weighted(weights)];
}

TokenId GrammarSampler::sample_transitive_verb(Rng& rng, GrammarNumber number) const {
  const auto& pool = number == GrammarNumber::kSingular ? verbs_t_sing_ : verbs_t_plur_;
  return pool[rng.next_below(pool.size())];
}

TokenId GrammarSampler::sample_intransitive_verb(Rng& rng, GrammarNumber number) const {
  const auto& pool = number == GrammarNumber::kSingular ? verbs_i_sing_ : verbs_i_plur_;
  return pool[rng.next_below(pool.size())];
}

void GrammarSampler::sample_noun_phrase(Rng& rng, GrammarNumber number,
                                        std::vector<TokenId>& out) const {
  // Plural NPs use "the"; singular NPs pick either determiner.
  if (number == GrammarNumber::kSingular) {
    out.push_back(determiners_[rng.next_below(determiners_.size())]);
  } else {
    out.push_back(determiners_.front());
  }
  if (rng.next_bool(style_.adjective_probability)) {
    out.push_back(adjectives_[rng.next_below(adjectives_.size())]);
  }
  out.push_back(sample_noun(rng, number));
}

SentenceInfo GrammarSampler::sample_sentence(Rng& rng, std::vector<TokenId>& out) const {
  SentenceInfo info;
  info.subject_number = rng.next_bool(style_.plural_probability)
                            ? GrammarNumber::kPlural
                            : GrammarNumber::kSingular;

  sample_noun_phrase(rng, info.subject_number, out);
  info.subject_noun = out.back();

  // Subject PP attractor: "the cat near the dogs ..." -- agreement stays
  // with the head noun.
  if (rng.next_bool(style_.subject_pp_probability)) {
    info.has_attractor = true;
    info.attractor_number = rng.next_bool() ? GrammarNumber::kPlural
                                            : GrammarNumber::kSingular;
    out.push_back(prepositions_[rng.next_below(prepositions_.size())]);
    out.push_back(determiners_.front());
    out.push_back(sample_noun(rng, info.attractor_number));
  }

  info.transitive = rng.next_bool(style_.transitive_probability);
  if (info.transitive) {
    info.verb = sample_transitive_verb(rng, info.subject_number);
    out.push_back(info.verb);
    const GrammarNumber object_number = rng.next_bool(style_.plural_probability)
                                            ? GrammarNumber::kPlural
                                            : GrammarNumber::kSingular;
    sample_noun_phrase(rng, object_number, out);
  } else {
    info.verb = sample_intransitive_verb(rng, info.subject_number);
    out.push_back(info.verb);
    if (rng.next_bool(style_.preposition_probability)) {
      out.push_back(prepositions_[rng.next_below(prepositions_.size())]);
      const GrammarNumber pp_number = rng.next_bool(style_.plural_probability)
                                          ? GrammarNumber::kPlural
                                          : GrammarNumber::kSingular;
      sample_noun_phrase(rng, pp_number, out);
    } else if (rng.next_bool(style_.adverb_probability)) {
      out.push_back(adverbs_[rng.next_below(adverbs_.size())]);
    }
  }
  out.push_back(period_);
  return info;
}

void GrammarSampler::sample_pronoun_sentence(Rng& rng, GrammarNumber antecedent,
                                             std::vector<TokenId>& out) const {
  out.push_back(antecedent == GrammarNumber::kSingular ? pronoun_sing_ : pronoun_plur_);
  out.push_back(sample_intransitive_verb(rng, antecedent));
  if (rng.next_bool(style_.adverb_probability)) {
    out.push_back(adverbs_[rng.next_below(adverbs_.size())]);
  }
  out.push_back(period_);
}

void GrammarSampler::sample_passage(Rng& rng, std::vector<TokenId>& out) const {
  out.push_back(vocab_.bos());
  const int sentences = static_cast<int>(rng.next_int(1, 3));
  SentenceInfo last;
  for (int i = 0; i < sentences; ++i) {
    last = sample_sentence(rng, out);
  }
  if (rng.next_bool(style_.pronoun_followup_probability)) {
    sample_pronoun_sentence(rng, last.subject_number, out);
  }
  out.push_back(vocab_.eos());
}

std::vector<TokenId> GrammarSampler::sample_stream(Rng& rng, int64_t min_tokens) const {
  std::vector<TokenId> out;
  out.reserve(static_cast<size_t>(min_tokens) + 64);
  while (static_cast<int64_t>(out.size()) < min_tokens) {
    sample_passage(rng, out);
  }
  return out;
}

}  // namespace emmark
