#include "data/tasks.h"

#include <algorithm>

namespace emmark {

TaskSet make_lambada_like(const Vocab& vocab, int64_t items, Rng& rng) {
  // Context: "the ADJ NOUN V_t the ADJ ___" -- the final object noun is
  // held out; distractors come from verb/adverb/preposition categories, so
  // exactly one option is grammatical.
  GrammarSampler sampler(vocab);
  TaskSet set;
  set.name = "s-lambada";
  set.chance_accuracy = 0.25;
  const auto verbs = vocab.tokens_of(TokenCategory::kVerbIntransPlural);
  const auto adverbs = vocab.tokens_of(TokenCategory::kAdverb);
  const auto preps = vocab.tokens_of(TokenCategory::kPreposition);
  for (int64_t i = 0; i < items; ++i) {
    const GrammarNumber subj_num =
        rng.next_bool() ? GrammarNumber::kPlural : GrammarNumber::kSingular;
    const GrammarNumber obj_num =
        rng.next_bool() ? GrammarNumber::kPlural : GrammarNumber::kSingular;
    TaskItem item;
    item.context.push_back(vocab.bos());
    item.context.push_back(vocab.id("the"));
    item.context.push_back(sampler.sample_noun(rng, subj_num));
    item.context.push_back(sampler.sample_transitive_verb(rng, subj_num));
    item.context.push_back(vocab.id("the"));

    const TokenId answer = sampler.sample_noun(rng, obj_num);
    std::vector<TokenId> distractor_pool;
    distractor_pool.push_back(verbs[rng.next_below(verbs.size())]);
    distractor_pool.push_back(adverbs[rng.next_below(adverbs.size())]);
    distractor_pool.push_back(preps[rng.next_below(preps.size())]);

    item.options.push_back({answer});
    for (TokenId d : distractor_pool) item.options.push_back({d});
    item.correct = 0;
    // Shuffle option order so "first option" carries no signal.
    std::vector<size_t> order(item.options.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    rng.shuffle(order);
    std::vector<std::vector<TokenId>> shuffled(item.options.size());
    for (size_t k = 0; k < order.size(); ++k) {
      shuffled[k] = item.options[order[k]];
      if (order[k] == 0) item.correct = static_cast<int64_t>(k);
    }
    item.options = std::move(shuffled);
    set.items.push_back(std::move(item));
  }
  return set;
}

TaskSet make_hellaswag_like(const Vocab& vocab, int64_t items, Rng& rng) {
  // Context: a full sentence plus the subject NP of a second sentence.
  // Options: the true continuation (verb phrase + '.') vs the same tokens
  // randomly permuted (ungrammatical order).
  GrammarSampler sampler(vocab);
  TaskSet set;
  set.name = "s-hellaswag";
  set.chance_accuracy = 0.25;
  const auto adverbs = vocab.tokens_of(TokenCategory::kAdverb);
  for (int64_t i = 0; i < items; ++i) {
    TaskItem item;
    item.context.push_back(vocab.bos());
    SentenceInfo first = sampler.sample_sentence(rng, item.context);
    item.context.push_back(vocab.id("the"));
    const GrammarNumber num = first.subject_number;
    item.context.push_back(sampler.sample_noun(rng, num));

    std::vector<TokenId> continuation;
    continuation.push_back(sampler.sample_intransitive_verb(rng, num));
    continuation.push_back(adverbs[rng.next_below(adverbs.size())]);
    continuation.push_back(vocab.id("."));

    // Three distinct derangement-style distractors of the 3-token
    // continuation [verb, adverb, '.']: two rotations plus a head swap.
    // Categories differ per slot, so all four sequences are distinct.
    std::vector<std::vector<TokenId>> options;
    options.push_back(continuation);
    std::vector<TokenId> rot1 = continuation;
    std::rotate(rot1.begin(), rot1.begin() + 1, rot1.end());
    std::vector<TokenId> rot2 = continuation;
    std::rotate(rot2.begin(), rot2.begin() + 2, rot2.end());
    std::vector<TokenId> swapped = continuation;
    std::swap(swapped[0], swapped[1]);
    options.push_back(std::move(rot1));
    options.push_back(std::move(rot2));
    options.push_back(std::move(swapped));

    // Shuffle option order so position carries no signal.
    std::vector<size_t> order{0, 1, 2, 3};
    rng.shuffle(order);
    item.options.resize(4);
    for (size_t k = 0; k < 4; ++k) {
      item.options[k] = options[order[k]];
      if (order[k] == 0) item.correct = static_cast<int64_t>(k);
    }
    set.items.push_back(std::move(item));
  }
  return set;
}

TaskSet make_piqa_like(const Vocab& vocab, int64_t items, Rng& rng) {
  // Physical-plausibility stand-in: "the NOUN V_i near the NOUN ." vs the
  // same sentence with preposition and verb swapped into an ungrammatical
  // order ("the NOUN near V_i the NOUN .").
  GrammarSampler sampler(vocab);
  TaskSet set;
  set.name = "s-piqa";
  set.chance_accuracy = 0.5;
  const auto preps = vocab.tokens_of(TokenCategory::kPreposition);
  for (int64_t i = 0; i < items; ++i) {
    const GrammarNumber num =
        rng.next_bool() ? GrammarNumber::kPlural : GrammarNumber::kSingular;
    TaskItem item;
    item.context.push_back(vocab.bos());
    item.context.push_back(vocab.id("the"));
    item.context.push_back(sampler.sample_noun(rng, num));

    const TokenId verb = sampler.sample_intransitive_verb(rng, num);
    const TokenId prep = preps[rng.next_below(preps.size())];
    const TokenId object = sampler.sample_noun(rng, GrammarNumber::kSingular);

    std::vector<TokenId> good = {verb, prep, vocab.id("the"), object, vocab.id(".")};
    std::vector<TokenId> bad = {prep, verb, vocab.id("the"), object, vocab.id(".")};

    const bool good_first = rng.next_bool();
    item.options.push_back(good_first ? good : bad);
    item.options.push_back(good_first ? bad : good);
    item.correct = good_first ? 0 : 1;
    set.items.push_back(std::move(item));
  }
  return set;
}

TaskSet make_winogrande_like(const Vocab& vocab, int64_t items, Rng& rng) {
  // Long-distance agreement with an attractor, the hardest discriminative
  // probe in the suite: "the cat near the dogs ___" -- the verb must agree
  // with the *head* noun (cat), not the linearly closer attractor (dogs).
  // Trained models sit well above chance but below ceiling, so this task
  // is the sensitive dial for weight-perturbation damage.
  GrammarSampler sampler(vocab);
  TaskSet set;
  set.name = "s-winogrande";
  set.chance_accuracy = 0.5;
  const auto vi_sing = vocab.tokens_of(TokenCategory::kVerbIntransSingular);
  const auto vi_plur = vocab.tokens_of(TokenCategory::kVerbIntransPlural);
  const auto preps = vocab.tokens_of(TokenCategory::kPreposition);
  for (int64_t i = 0; i < items; ++i) {
    const bool plural_head = rng.next_bool();
    const GrammarNumber head =
        plural_head ? GrammarNumber::kPlural : GrammarNumber::kSingular;
    const GrammarNumber attractor =
        plural_head ? GrammarNumber::kSingular : GrammarNumber::kPlural;
    TaskItem item;
    item.context.push_back(vocab.bos());
    item.context.push_back(vocab.id("the"));
    item.context.push_back(sampler.sample_noun(rng, head));
    item.context.push_back(preps[rng.next_below(preps.size())]);
    item.context.push_back(vocab.id("the"));
    item.context.push_back(sampler.sample_noun(rng, attractor));

    // Matched verb pair (same lemma index in both pools).
    const size_t lemma = rng.next_below(vi_sing.size());
    const TokenId correct_verb = plural_head ? vi_plur[lemma] : vi_sing[lemma];
    const TokenId wrong_verb = plural_head ? vi_sing[lemma] : vi_plur[lemma];

    const bool correct_first = rng.next_bool();
    item.options.push_back({correct_first ? correct_verb : wrong_verb});
    item.options.push_back({correct_first ? wrong_verb : correct_verb});
    item.correct = correct_first ? 0 : 1;
    set.items.push_back(std::move(item));
  }
  return set;
}

std::vector<TaskSet> make_task_suite(const Vocab& vocab, int64_t items_per_task,
                                     uint64_t seed) {
  std::vector<TaskSet> suite;
  Rng r1(seed + 11), r2(seed + 22), r3(seed + 33), r4(seed + 44);
  suite.push_back(make_lambada_like(vocab, items_per_task, r1));
  suite.push_back(make_hellaswag_like(vocab, items_per_task, r2));
  suite.push_back(make_piqa_like(vocab, items_per_task, r3));
  suite.push_back(make_winogrande_like(vocab, items_per_task, r4));
  return suite;
}

}  // namespace emmark
