#include "data/corpus.h"

#include <stdexcept>

namespace emmark {

Corpus make_corpus(const Vocab& vocab, const CorpusConfig& config) {
  GrammarSampler sampler(vocab, config.style);
  Corpus corpus;
  // Distinct seeds per split keep the streams disjoint while remaining
  // reproducible from the single corpus seed.
  Rng train_rng(config.seed * 0x9e3779b97f4a7c15ull + 1);
  Rng valid_rng(config.seed * 0x9e3779b97f4a7c15ull + 2);
  Rng test_rng(config.seed * 0x9e3779b97f4a7c15ull + 3);
  corpus.train = sampler.sample_stream(train_rng, config.train_tokens);
  corpus.valid = sampler.sample_stream(valid_rng, config.valid_tokens);
  corpus.test = sampler.sample_stream(test_rng, config.test_tokens);
  return corpus;
}

Batch sample_batch(const std::vector<TokenId>& stream, int64_t batch_size,
                   int64_t seq_len, Rng& rng) {
  if (static_cast<int64_t>(stream.size()) < seq_len + 1) {
    throw std::invalid_argument("sample_batch: stream shorter than seq_len+1");
  }
  Batch batch;
  batch.batch_size = batch_size;
  batch.seq_len = seq_len;
  batch.inputs.resize(static_cast<size_t>(batch_size * seq_len));
  batch.targets.resize(static_cast<size_t>(batch_size * seq_len));
  const int64_t max_start = static_cast<int64_t>(stream.size()) - seq_len - 1;
  for (int64_t b = 0; b < batch_size; ++b) {
    const int64_t start = static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(max_start + 1)));
    for (int64_t t = 0; t < seq_len; ++t) {
      batch.inputs[static_cast<size_t>(b * seq_len + t)] = stream[static_cast<size_t>(start + t)];
      batch.targets[static_cast<size_t>(b * seq_len + t)] = stream[static_cast<size_t>(start + t + 1)];
    }
  }
  return batch;
}

std::vector<Batch> tile_eval_batches(const std::vector<TokenId>& stream,
                                     int64_t batch_size, int64_t seq_len) {
  std::vector<Batch> batches;
  if (static_cast<int64_t>(stream.size()) < 2) return batches;

  // Collect consecutive full windows, then group into batches.
  std::vector<std::pair<int64_t, int64_t>> windows;  // (start, len)
  for (int64_t start = 0; start + 1 < static_cast<int64_t>(stream.size());
       start += seq_len) {
    const int64_t len =
        std::min<int64_t>(seq_len, static_cast<int64_t>(stream.size()) - 1 - start);
    if (len >= 1) windows.emplace_back(start, len);
  }

  for (size_t w = 0; w < windows.size();) {
    const int64_t rows = std::min<int64_t>(batch_size,
                                           static_cast<int64_t>(windows.size() - w));
    Batch batch;
    batch.batch_size = rows;
    batch.seq_len = seq_len;
    batch.inputs.assign(static_cast<size_t>(rows * seq_len), 0);
    // Target -1 marks padding positions excluded from loss/PPL.
    batch.targets.assign(static_cast<size_t>(rows * seq_len), -1);
    for (int64_t r = 0; r < rows; ++r, ++w) {
      const auto [start, len] = windows[w];
      for (int64_t t = 0; t < len; ++t) {
        batch.inputs[static_cast<size_t>(r * seq_len + t)] = stream[static_cast<size_t>(start + t)];
        batch.targets[static_cast<size_t>(r * seq_len + t)] = stream[static_cast<size_t>(start + t + 1)];
      }
      // Pad remaining input positions with the last real token; their
      // targets stay -1 so they do not contribute to loss.
      for (int64_t t = len; t < seq_len; ++t) {
        batch.inputs[static_cast<size_t>(r * seq_len + t)] = stream[static_cast<size_t>(start + len - 1)];
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace emmark
