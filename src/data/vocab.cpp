#include "data/vocab.h"

#include <stdexcept>

namespace emmark {

TokenId Vocab::add(const std::string& word, TokenCategory category) {
  if (ids_.count(word)) throw std::invalid_argument("duplicate vocab word: " + word);
  const TokenId id = static_cast<TokenId>(words_.size());
  words_.push_back(word);
  categories_.push_back(category);
  ids_.emplace(word, id);
  return id;
}

TokenId Vocab::id(const std::string& word) const {
  const auto it = ids_.find(word);
  if (it == ids_.end()) throw std::out_of_range("unknown vocab word: " + word);
  return it->second;
}

const std::string& Vocab::word(TokenId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("token id out of range");
  return words_[static_cast<size_t>(id)];
}

TokenCategory Vocab::category(TokenId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("token id out of range");
  return categories_[static_cast<size_t>(id)];
}

std::vector<TokenId> Vocab::tokens_of(TokenCategory category) const {
  std::vector<TokenId> out;
  for (TokenId i = 0; i < size(); ++i) {
    if (categories_[static_cast<size_t>(i)] == category) out.push_back(i);
  }
  return out;
}

std::string Vocab::render(const std::vector<TokenId>& tokens) const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += ' ';
    out += word(tokens[i]);
  }
  return out;
}

const Vocab& synth_vocab() {
  static const Vocab vocab = [] {
    Vocab v;
    v.add("<bos>", TokenCategory::kSpecial);
    v.add("<eos>", TokenCategory::kSpecial);

    v.add("the", TokenCategory::kDeterminer);
    v.add("a", TokenCategory::kDeterminer);

    for (const char* adj : {"big", "small", "red", "blue", "happy", "sleepy"})
      v.add(adj, TokenCategory::kAdjective);

    for (const char* noun : {"cat", "dog", "bird", "robot", "child", "wizard"})
      v.add(noun, TokenCategory::kNounSingular);
    for (const char* noun : {"cats", "dogs", "birds", "robots", "children", "wizards"})
      v.add(noun, TokenCategory::kNounPlural);

    for (const char* verb : {"chases", "sees", "likes", "follows"})
      v.add(verb, TokenCategory::kVerbSingular);
    for (const char* verb : {"chase", "see", "like", "follow"})
      v.add(verb, TokenCategory::kVerbPlural);

    for (const char* verb : {"sleeps", "runs", "sings", "jumps"})
      v.add(verb, TokenCategory::kVerbIntransSingular);
    for (const char* verb : {"sleep", "run", "sing", "jump"})
      v.add(verb, TokenCategory::kVerbIntransPlural);

    for (const char* adv : {"quickly", "quietly", "often", "rarely"})
      v.add(adv, TokenCategory::kAdverb);

    for (const char* prep : {"near", "under", "above"})
      v.add(prep, TokenCategory::kPreposition);

    v.add("it", TokenCategory::kPronounSingular);
    v.add("they", TokenCategory::kPronounPlural);

    v.add(".", TokenCategory::kPunct);
    return v;
  }();
  return vocab;
}

}  // namespace emmark
