// Token vocabulary for the synthetic language ("SynthText").
//
// The reproduction trains word-level language models on a synthetic
// probabilistic grammar (see grammar.h). The vocabulary is fixed and
// category-tagged so task generators can build multiple-choice items with
// exactly one grammatical answer.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace emmark {

using TokenId = int32_t;

/// Grammatical category of each token; drives agreement rules and task
/// distractor sampling.
enum class TokenCategory {
  kSpecial,        // <bos>, <eos>
  kDeterminer,     // the, a
  kAdjective,      // big, small, ...
  kNounSingular,   // cat, dog, ...
  kNounPlural,     // cats, dogs, ...
  kVerbSingular,   // chases, sees, ... (3rd person singular)
  kVerbPlural,     // chase, see, ...
  kVerbIntransSingular,  // sleeps, runs, ...
  kVerbIntransPlural,    // sleep, run, ...
  kAdverb,         // quickly, ...
  kPreposition,    // near, under, ...
  kPronounSingular,  // it
  kPronounPlural,    // they
  kPunct,          // .
};

class Vocab {
 public:
  Vocab() = default;

  /// Registers a token; returns its id. Duplicate words are an error.
  TokenId add(const std::string& word, TokenCategory category);

  TokenId id(const std::string& word) const;
  const std::string& word(TokenId id) const;
  TokenCategory category(TokenId id) const;
  int64_t size() const { return static_cast<int64_t>(words_.size()); }
  bool contains(const std::string& word) const { return ids_.count(word) > 0; }

  /// All token ids of a category, in registration order.
  std::vector<TokenId> tokens_of(TokenCategory category) const;

  /// Render a token sequence as a space-separated string (for logs/examples).
  std::string render(const std::vector<TokenId>& tokens) const;

  // Well-known special tokens, registered first by synth_vocab().
  TokenId bos() const { return id("<bos>"); }
  TokenId eos() const { return id("<eos>"); }

 private:
  std::vector<std::string> words_;
  std::vector<TokenCategory> categories_;
  std::unordered_map<std::string, TokenId> ids_;
};

/// The fixed SynthText vocabulary used throughout the reproduction
/// (~56 tokens across all categories).
const Vocab& synth_vocab();

}  // namespace emmark
