// SynthText: a probabilistic grammar with number agreement.
//
// This is the stand-in for the paper's natural-language corpora (WikiText
// for perplexity, Alpaca/WikiText for the integrity fine-tunes). Sentences
// follow
//
//   S  -> NP(num) VP(num) '.'
//   NP -> Det Adj? Noun(num)
//   VP -> Vt(num) NP(any) | Vi(num) Adv? | Vi(num) Prep NP(any)
//
// with subject-verb number agreement, and passages optionally continue with
// a pronoun sentence ('it'/'they' matching the subject's number). The
// structure is rich enough that a small transformer learns real syntax --
// which is what makes perplexity and the zero-shot tasks sensitive to
// weight perturbations, mirroring the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "data/vocab.h"
#include "util/rng.h"

namespace emmark {

enum class GrammarNumber { kSingular, kPlural };

/// Metadata about a generated sentence, used by task generators.
struct SentenceInfo {
  GrammarNumber subject_number = GrammarNumber::kSingular;
  TokenId subject_noun = -1;
  TokenId verb = -1;
  bool transitive = false;
  /// Subject carried a PP attractor ("the cat near the dogs ..."); the verb
  /// still agrees with the head noun, never the attractor.
  bool has_attractor = false;
  GrammarNumber attractor_number = GrammarNumber::kSingular;
};

/// Knobs for domain-shifted corpora (the integrity experiment fine-tunes on
/// "different datasets"; we shift the distribution instead).
struct GrammarStyle {
  double plural_probability = 0.5;
  double adjective_probability = 0.5;
  double transitive_probability = 0.5;
  double adverb_probability = 0.4;
  double preposition_probability = 0.35;
  double pronoun_followup_probability = 0.35;
  /// Probability the subject NP carries a PP attractor ("the cat near the
  /// dogs sleeps"). Long-distance head agreement is the hard syntactic
  /// phenomenon the s-winogrande task probes.
  double subject_pp_probability = 0.3;
  /// Skew over noun choice: 0 = uniform; larger values concentrate mass on
  /// the first nouns (Zipf-like), shifting lexical statistics.
  double noun_skew = 0.0;
};

/// Default style used for the main ("WikiText-like") corpus.
GrammarStyle default_style();
/// Instruction-ish shifted style (stands in for the Alpaca fine-tune).
GrammarStyle shifted_style_a();
/// Second shifted style (stands in for the WikiText fine-tune).
GrammarStyle shifted_style_b();

class GrammarSampler {
 public:
  explicit GrammarSampler(const Vocab& vocab, GrammarStyle style = default_style());

  /// Appends one sentence (ending in '.') to `out`; returns its info.
  SentenceInfo sample_sentence(Rng& rng, std::vector<TokenId>& out) const;

  /// Appends a pronoun follow-up sentence agreeing with `antecedent`.
  void sample_pronoun_sentence(Rng& rng, GrammarNumber antecedent,
                               std::vector<TokenId>& out) const;

  /// Appends a passage: 1-3 sentences, possibly a pronoun follow-up,
  /// bracketed by <bos> ... <eos>.
  void sample_passage(Rng& rng, std::vector<TokenId>& out) const;

  /// Generates a token stream of at least `min_tokens` tokens.
  std::vector<TokenId> sample_stream(Rng& rng, int64_t min_tokens) const;

  const Vocab& vocab() const { return vocab_; }
  const GrammarStyle& style() const { return style_; }

  /// Noun pick honoring the style's skew. Exposed for task generators.
  TokenId sample_noun(Rng& rng, GrammarNumber number) const;
  TokenId sample_transitive_verb(Rng& rng, GrammarNumber number) const;
  TokenId sample_intransitive_verb(Rng& rng, GrammarNumber number) const;

 private:
  void sample_noun_phrase(Rng& rng, GrammarNumber number,
                          std::vector<TokenId>& out) const;

  const Vocab& vocab_;
  GrammarStyle style_;
  std::vector<TokenId> nouns_sing_, nouns_plur_;
  std::vector<TokenId> verbs_t_sing_, verbs_t_plur_;
  std::vector<TokenId> verbs_i_sing_, verbs_i_plur_;
  std::vector<TokenId> adjectives_, adverbs_, prepositions_, determiners_;
  TokenId period_ = -1;
  TokenId pronoun_sing_ = -1, pronoun_plur_ = -1;
};

}  // namespace emmark
