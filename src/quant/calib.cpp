#include "quant/calib.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/ops.h"

namespace emmark {

const LayerActivationStats& ActivationStats::find(const std::string& name) const {
  for (const auto& layer : layers) {
    if (layer.name == name) return layer;
  }
  throw std::out_of_range("no activation stats for layer: " + name);
}

bool ActivationStats::has(const std::string& name) const {
  for (const auto& layer : layers) {
    if (layer.name == name) return true;
  }
  return false;
}

namespace {
constexpr const char* kStatsMagic = "EMMSTAT";
constexpr uint32_t kStatsVersion = 1;
}  // namespace

void ActivationStats::save(BinaryWriter& w) const {
  w.write_u64(layers.size());
  for (const auto& layer : layers) {
    w.write_string(layer.name);
    w.write_vector(layer.abs_mean);
    w.write_vector(layer.abs_max);
    layer.samples.save(w);
    w.write_i64(layer.observed_rows);
  }
}

ActivationStats ActivationStats::load(BinaryReader& r) {
  ActivationStats stats;
  const uint64_t count = r.read_u64();
  stats.layers.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LayerActivationStats layer;
    layer.name = r.read_string();
    layer.abs_mean = r.read_vector<float>();
    layer.abs_max = r.read_vector<float>();
    layer.samples = Tensor::load(r);
    layer.observed_rows = r.read_i64();
    stats.layers.push_back(std::move(layer));
  }
  return stats;
}

ActivationStats collect_activation_stats(TransformerLM& model,
                                         const std::vector<TokenId>& stream,
                                         const CalibConfig& config) {
  auto linears = model.quantizable_linears();
  ActivationStats stats;
  stats.layers.resize(linears.size());
  for (size_t i = 0; i < linears.size(); ++i) {
    auto& layer = stats.layers[i];
    layer.name = linears[i].name;
    const int64_t in = linears[i].linear->in_features();
    layer.abs_mean.assign(static_cast<size_t>(in), 0.0f);
    layer.abs_max.assign(static_cast<size_t>(in), 0.0f);
    if (config.max_sample_rows > 0) {
      layer.samples = Tensor({config.max_sample_rows, in});
    }
  }

  Rng rng(config.seed);
  std::vector<int64_t> sample_fill(linears.size(), 0);
  for (int64_t b = 0; b < config.batches; ++b) {
    const Batch batch = sample_batch(stream, config.batch_size, config.seq_len, rng);
    (void)model.forward_loss(batch);

    for (size_t i = 0; i < linears.size(); ++i) {
      const Tensor& x = linears[i].linear->last_input();
      auto& layer = stats.layers[i];
      const int64_t rows = x.dim(0);
      const int64_t in = x.dim(1);
      for (int64_t r = 0; r < rows; ++r) {
        const float* xr = x.data() + r * in;
        for (int64_t c = 0; c < in; ++c) {
          const float a = std::fabs(xr[c]);
          layer.abs_mean[static_cast<size_t>(c)] += a;
          auto& mx = layer.abs_max[static_cast<size_t>(c)];
          mx = std::max(mx, a);
        }
      }
      // Reservoir-free sampling: keep the first max_sample_rows rows; the
      // calibration stream is already i.i.d. windows.
      if (config.max_sample_rows > 0) {
        int64_t& fill = sample_fill[i];
        const int64_t take = std::min<int64_t>(rows, config.max_sample_rows - fill);
        for (int64_t r = 0; r < take; ++r) {
          std::memcpy(layer.samples.data() + (fill + r) * in, x.data() + r * in,
                      static_cast<size_t>(in) * sizeof(float));
        }
        fill += take;
      }
      layer.observed_rows += rows;
    }
  }

  for (size_t i = 0; i < stats.layers.size(); ++i) {
    auto& layer = stats.layers[i];
    if (layer.observed_rows > 0) {
      const float inv = 1.0f / static_cast<float>(layer.observed_rows);
      for (float& v : layer.abs_mean) v *= inv;
    }
    // Trim the sample tensor to the rows actually filled.
    if (config.max_sample_rows > 0 && sample_fill[i] < config.max_sample_rows) {
      const int64_t in = layer.samples.dim(1);
      Tensor trimmed({std::max<int64_t>(sample_fill[i], 1), in});
      std::memcpy(trimmed.data(), layer.samples.data(),
                  static_cast<size_t>(trimmed.numel()) * sizeof(float));
      layer.samples = std::move(trimmed);
    }
  }
  return stats;
}

}  // namespace emmark
