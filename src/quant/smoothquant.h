// SmoothQuant (Xiao et al., ICML'23): migrate activation outliers into the
// weights through a per-channel equivalent transform
//
//     s_j = max|X_j|^alpha / max|W_j|^(1-alpha)
//     y   = (x / s) . (s o W)^T
//
// then quantize the smoothed weight with RTN INT8. The paper uses this for
// the OPT-family INT8 models.
#pragma once

#include <vector>

#include "quant/qtensor.h"
#include "tensor/tensor.h"

namespace emmark {

struct SmoothQuantConfig {
  float alpha = 0.5f;  // migration strength
  QuantBits bits = QuantBits::kInt8;
  int64_t group_size = 0;  // per-row scales by default
};

/// `act_abs_max` is the calibration per-input-channel max |activation|.
QuantizedTensor smoothquant(const Tensor& weight,
                            const std::vector<float>& act_abs_max,
                            const SmoothQuantConfig& config);

}  // namespace emmark
