#include "quant/rtn.h"

namespace emmark {

QuantizedTensor rtn(const Tensor& weight, const RtnConfig& config) {
  return quantize_rtn(weight, config.bits, config.group_size);
}

}  // namespace emmark
