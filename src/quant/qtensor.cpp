#include "quant/qtensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.h"
#include "tensor/gemm.h"
#include "util/phaseprof.h"

namespace emmark {

const char* to_string(QuantBits bits) {
  return bits == QuantBits::kInt4 ? "INT4" : "INT8";
}

int32_t qmax_for(QuantBits bits) {
  return bits == QuantBits::kInt4 ? 7 : 127;
}

QuantizedTensor::QuantizedTensor(int64_t rows, int64_t cols, QuantBits bits,
                                 int64_t group_size)
    : rows_(rows), cols_(cols), bits_(bits), group_size_(group_size) {
  if (rows <= 0 || cols <= 0) throw std::invalid_argument("QuantizedTensor: empty shape");
  if (group_size < 0 || (group_size > 0 && cols % group_size != 0)) {
    throw std::invalid_argument("QuantizedTensor: cols must be a multiple of group_size");
  }
  groups_per_row_ = group_size > 0 ? cols / group_size : 1;
  row_stride_ = packed() ? kernels::int4_row_bytes(cols) : cols;
  codes_.assign(static_cast<size_t>(rows * row_stride_), 0);
  scales_ = Tensor({rows, groups_per_row_});
}

int8_t QuantizedTensor::code(int64_t row, int64_t col) const {
  if (packed()) {
    const uint8_t byte =
        static_cast<uint8_t>(codes_[static_cast<size_t>(storage_offset(row, col))]);
    return (col & 1) ? kernels::int4_unpack_hi(byte)
                     : kernels::int4_unpack_lo(byte);
  }
  return codes_[static_cast<size_t>(row * cols_ + col)];
}

void QuantizedTensor::set_code(int64_t row, int64_t col, int8_t value) {
  set_code_flat(row * cols_ + col, value);
}

void QuantizedTensor::set_code_flat(int64_t index, int8_t value) {
  if (value < qmin() || value > qmax()) {
    throw std::out_of_range("quantized code out of range for " +
                            std::string(to_string(bits_)));
  }
  if (packed()) {
    const int64_t row = index / cols_;
    const int64_t col = index % cols_;
    int8_t& slot = codes_[static_cast<size_t>(storage_offset(row, col))];
    const uint8_t byte = static_cast<uint8_t>(slot);
    const uint8_t updated =
        (col & 1)
            ? kernels::int4_pack(kernels::int4_unpack_lo(byte), value)
            : kernels::int4_pack(value, kernels::int4_unpack_hi(byte));
    slot = static_cast<int8_t>(updated);
    return;
  }
  codes_[static_cast<size_t>(index)] = value;
}

std::vector<int8_t> QuantizedTensor::codes() const {
  if (!packed()) return codes_;
  std::vector<int8_t> out(static_cast<size_t>(rows_ * cols_));
  unpack_into(out.data());
  return out;
}

QuantizedTensor::CodesView QuantizedTensor::codes_view() const {
  CodesView view;
  if (packed()) {
    view.scratch_.resize(static_cast<size_t>(rows_ * cols_));
    unpack_into(view.scratch_.data());
    view.ptr_ = view.scratch_.data();
  } else {
    view.ptr_ = codes_.data();
  }
  return view;
}

QuantizedTensor::CodesMut QuantizedTensor::codes_mut() {
  CodesMut guard;
  if (packed()) {
    guard.scratch_.resize(static_cast<size_t>(rows_ * cols_));
    unpack_into(guard.scratch_.data());
    guard.ptr_ = guard.scratch_.data();
    guard.owner_ = this;
  } else {
    guard.ptr_ = codes_.data();
  }
  return guard;
}

void QuantizedTensor::unpack_into(int8_t* out) const {
  for (int64_t r = 0; r < rows_; ++r) {
    const uint8_t* row =
        reinterpret_cast<const uint8_t*>(codes_.data()) + r * row_stride_;
    int8_t* dst = out + r * cols_;
    const int64_t pairs = cols_ / 2;
    for (int64_t b = 0; b < pairs; ++b) {
      dst[2 * b] = kernels::int4_unpack_lo(row[b]);
      dst[2 * b + 1] = kernels::int4_unpack_hi(row[b]);
    }
    if (cols_ & 1) dst[cols_ - 1] = kernels::int4_unpack_lo(row[pairs]);
  }
}

void QuantizedTensor::pack_from(const int8_t* unpacked) {
  for (int64_t r = 0; r < rows_; ++r) {
    uint8_t* row = reinterpret_cast<uint8_t*>(codes_.data()) + r * row_stride_;
    const int8_t* src = unpacked + r * cols_;
    const int64_t pairs = cols_ / 2;
    for (int64_t b = 0; b < pairs; ++b) {
      row[b] = kernels::int4_pack(src[2 * b], src[2 * b + 1]);
    }
    // Odd tail: the unused high nibble stays zero so packed buffers of
    // equal grids compare equal byte-for-byte.
    if (cols_ & 1) row[pairs] = kernels::int4_pack(src[cols_ - 1], 0);
  }
}

bool QuantizedTensor::is_saturated(int64_t row, int64_t col) const {
  const int8_t c = code(row, col);
  return c <= qmin() || c >= qmax();
}

bool QuantizedTensor::is_saturated_flat(int64_t index) const {
  const int8_t c = code_flat(index);
  return c <= qmin() || c >= qmax();
}

float QuantizedTensor::scale(int64_t row, int64_t col) const {
  return scales_.at(row, group_index(col));
}

void QuantizedTensor::set_scale(int64_t row, int64_t group, float value) {
  scales_.at(row, group) = value;
}

void QuantizedTensor::set_input_scale(std::vector<float> s) {
  if (static_cast<int64_t>(s.size()) != cols_) {
    throw std::invalid_argument("input_scale size must equal cols");
  }
  input_scale_ = std::move(s);
}

void QuantizedTensor::set_outliers(std::vector<int32_t> cols, Tensor weights) {
  if (weights.rank() != 2 || weights.dim(0) != rows_ ||
      weights.dim(1) != static_cast<int64_t>(cols.size())) {
    throw std::invalid_argument("outlier weights shape mismatch");
  }
  outlier_cols_ = std::move(cols);
  outlier_weights_ = std::move(weights);
}

bool QuantizedTensor::is_outlier_col(int64_t col) const {
  return std::find(outlier_cols_.begin(), outlier_cols_.end(),
                   static_cast<int32_t>(col)) != outlier_cols_.end();
}

float QuantizedTensor::dequantize_at(int64_t row, int64_t col) const {
  for (size_t k = 0; k < outlier_cols_.size(); ++k) {
    if (outlier_cols_[k] == static_cast<int32_t>(col)) {
      return outlier_weights_.at(row, static_cast<int64_t>(k));
    }
  }
  float w = static_cast<float>(code(row, col)) * scale(row, col);
  if (!input_scale_.empty()) w /= input_scale_[static_cast<size_t>(col)];
  return w;
}

Tensor QuantizedTensor::dequantize() const {
  phaseprof::ScopedTimer timer(phaseprof::Phase::kDequant);
  Tensor out({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    dequant_row_span(r, 0, cols_, out.data() + r * cols_);
  }
  return out;
}

void QuantizedTensor::dequant_row_span(int64_t row, int64_t col0, int64_t len,
                                       float* out) const {
  const kernels::Ops& ops = kernels::active_ops();
  const float* in_scale =
      input_scale_.empty() ? nullptr : input_scale_.data() + col0;
  const int64_t gs = group_size_ > 0 ? group_size_ : cols_;
  if (packed()) {
    // Packed int4: nibbles decode inside the kernel, straight from the
    // resident bytes -- half the code traffic of the unpacked layout.
    const uint8_t* row_codes =
        reinterpret_cast<const uint8_t*>(codes_.data()) + row * row_stride_;
    int64_t done = 0;
    while (done < len) {
      const int64_t col = col0 + done;
      const int64_t group_end = (col / gs + 1) * gs;
      const int64_t span = std::min(len - done, group_end - col);
      ops.dequant_packed_span_f32(
          row_codes, col, scales_.at(row, col / gs),
          in_scale != nullptr ? in_scale + done : nullptr, out + done, span);
      done += span;
    }
  } else {
    const int8_t* codes = codes_.data() + row * cols_ + col0;
    int64_t done = 0;
    while (done < len) {
      const int64_t col = col0 + done;
      const int64_t group_end = (col / gs + 1) * gs;
      const int64_t span = std::min(len - done, group_end - col);
      ops.dequant_span_f32(codes + done, scales_.at(row, col / gs),
                           in_scale != nullptr ? in_scale + done : nullptr,
                           out + done, span);
      done += span;
    }
  }
  // Outlier columns overwrite the quantized path.
  for (size_t k = 0; k < outlier_cols_.size(); ++k) {
    const int64_t c = outlier_cols_[k];
    if (c >= col0 && c < col0 + len) {
      out[c - col0] = outlier_weights_.at(row, static_cast<int64_t>(k));
    }
  }
}

void QuantizedTensor::save(BinaryWriter& w) const {
  w.write_i64(rows_);
  w.write_i64(cols_);
  w.write_u32(static_cast<uint32_t>(bits_));
  w.write_i64(group_size_);
  // The wire format stays one int8 per code for every bit width: packed
  // int4 is a resident-layout optimization, not a format change, so old
  // checkpoints load unmodified and new ones load on old builds.
  w.write_vector(codes());
  scales_.save(w);
  w.write_vector(input_scale_);
  w.write_vector(outlier_cols_);
  outlier_weights_.save(w);
}

QuantizedTensor QuantizedTensor::load(BinaryReader& r) {
  const int64_t rows = r.read_i64();
  const int64_t cols = r.read_i64();
  const uint32_t bits_raw = r.read_u32();
  if (bits_raw != 4 && bits_raw != 8) throw SerializeError("bad quant bit width");
  const int64_t group_size = r.read_i64();
  QuantizedTensor q(rows, cols, static_cast<QuantBits>(bits_raw), group_size);
  const std::vector<int8_t> unpacked = r.read_vector<int8_t>();
  if (static_cast<int64_t>(unpacked.size()) != rows * cols) {
    throw SerializeError("quantized code payload mismatch");
  }
  if (q.packed()) {
    q.pack_from(unpacked.data());
  } else {
    q.codes_ = unpacked;
  }
  q.scales_ = Tensor::load(r);
  q.input_scale_ = r.read_vector<float>();
  q.outlier_cols_ = r.read_vector<int32_t>();
  q.outlier_weights_ = Tensor::load(r);
  return q;
}

QuantizedTensor quantize_rtn(const Tensor& w, QuantBits bits, int64_t group_size) {
  if (w.rank() != 2) throw TensorError("quantize_rtn: rank-2 weight required");
  const int64_t rows = w.dim(0);
  const int64_t cols = w.dim(1);
  QuantizedTensor q(rows, cols, bits, group_size);
  const int64_t gs = group_size > 0 ? group_size : cols;
  const float qmax = static_cast<float>(q.qmax());
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    for (int64_t g = 0; g * gs < cols; ++g) {
      const int64_t begin = g * gs;
      const int64_t end = std::min(cols, begin + gs);
      float absmax = 0.0f;
      for (int64_t c = begin; c < end; ++c) absmax = std::max(absmax, std::fabs(row[c]));
      // A zero group keeps scale tiny-positive so dequantization is exact 0.
      const float scale = absmax > 0.0f ? absmax / qmax : 1e-8f;
      q.set_scale(r, g, scale);
      for (int64_t c = begin; c < end; ++c) {
        const float scaled = row[c] / scale;
        const int32_t code = std::clamp<int32_t>(
            static_cast<int32_t>(std::lround(scaled)), q.qmin(), q.qmax());
        q.set_code(r, c, static_cast<int8_t>(code));
      }
    }
  }
  return q;
}

void dequant_gemm_nt(const float* x, const QuantizedTensor& w, float* y,
                     int64_t m, bool accumulate) {
  const bool prefetch = kernels::gemm_prefetch_enabled();
  gemm_nt_packed(
      x, y, m, w.cols(), w.rows(), accumulate,
      [&w, prefetch](int64_t p0, int64_t pb, int64_t j0, int64_t jb,
                     float* panel) {
        // Dequantize each weight row's K-slice (contiguous codes), then
        // transpose into the K-major panel the panel sweep expects.
        // Timed as kDequant nested inside the driver's kGemm scope;
        // consumers subtract to get GEMM-exclusive time.
        phaseprof::ScopedTimer timer(phaseprof::Phase::kDequant);
        float rowbuf[kGemmPanelK];
        for (int64_t j = 0; j < jb; ++j) {
          // Pull the next weight row's code bytes toward L1 while this
          // row dequantizes.
          if (prefetch) w.prefetch_row_span(j0 + j + 1, p0);
          w.dequant_row_span(j0 + j, p0, pb, rowbuf);
          for (int64_t p = 0; p < pb; ++p) panel[p * jb + j] = rowbuf[p];
        }
      });
}

}  // namespace emmark
