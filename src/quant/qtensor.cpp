#include "quant/qtensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kernels.h"
#include "tensor/gemm.h"

namespace emmark {

const char* to_string(QuantBits bits) {
  return bits == QuantBits::kInt4 ? "INT4" : "INT8";
}

int32_t qmax_for(QuantBits bits) {
  return bits == QuantBits::kInt4 ? 7 : 127;
}

QuantizedTensor::QuantizedTensor(int64_t rows, int64_t cols, QuantBits bits,
                                 int64_t group_size)
    : rows_(rows), cols_(cols), bits_(bits), group_size_(group_size) {
  if (rows <= 0 || cols <= 0) throw std::invalid_argument("QuantizedTensor: empty shape");
  if (group_size < 0 || (group_size > 0 && cols % group_size != 0)) {
    throw std::invalid_argument("QuantizedTensor: cols must be a multiple of group_size");
  }
  groups_per_row_ = group_size > 0 ? cols / group_size : 1;
  codes_.assign(static_cast<size_t>(rows * cols), 0);
  scales_ = Tensor({rows, groups_per_row_});
}

void QuantizedTensor::set_code(int64_t row, int64_t col, int8_t value) {
  set_code_flat(row * cols_ + col, value);
}

void QuantizedTensor::set_code_flat(int64_t index, int8_t value) {
  if (value < qmin() || value > qmax()) {
    throw std::out_of_range("quantized code out of range for " +
                            std::string(to_string(bits_)));
  }
  codes_[static_cast<size_t>(index)] = value;
}

bool QuantizedTensor::is_saturated(int64_t row, int64_t col) const {
  return is_saturated_flat(row * cols_ + col);
}

bool QuantizedTensor::is_saturated_flat(int64_t index) const {
  const int8_t c = codes_[static_cast<size_t>(index)];
  return c <= qmin() || c >= qmax();
}

float QuantizedTensor::scale(int64_t row, int64_t col) const {
  return scales_.at(row, group_index(col));
}

void QuantizedTensor::set_scale(int64_t row, int64_t group, float value) {
  scales_.at(row, group) = value;
}

void QuantizedTensor::set_input_scale(std::vector<float> s) {
  if (static_cast<int64_t>(s.size()) != cols_) {
    throw std::invalid_argument("input_scale size must equal cols");
  }
  input_scale_ = std::move(s);
}

void QuantizedTensor::set_outliers(std::vector<int32_t> cols, Tensor weights) {
  if (weights.rank() != 2 || weights.dim(0) != rows_ ||
      weights.dim(1) != static_cast<int64_t>(cols.size())) {
    throw std::invalid_argument("outlier weights shape mismatch");
  }
  outlier_cols_ = std::move(cols);
  outlier_weights_ = std::move(weights);
}

bool QuantizedTensor::is_outlier_col(int64_t col) const {
  return std::find(outlier_cols_.begin(), outlier_cols_.end(),
                   static_cast<int32_t>(col)) != outlier_cols_.end();
}

float QuantizedTensor::dequantize_at(int64_t row, int64_t col) const {
  for (size_t k = 0; k < outlier_cols_.size(); ++k) {
    if (outlier_cols_[k] == static_cast<int32_t>(col)) {
      return outlier_weights_.at(row, static_cast<int64_t>(k));
    }
  }
  float w = static_cast<float>(code(row, col)) * scale(row, col);
  if (!input_scale_.empty()) w /= input_scale_[static_cast<size_t>(col)];
  return w;
}

Tensor QuantizedTensor::dequantize() const {
  Tensor out({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    dequant_row_span(r, 0, cols_, out.data() + r * cols_);
  }
  return out;
}

void QuantizedTensor::dequant_row_span(int64_t row, int64_t col0, int64_t len,
                                       float* out) const {
  const kernels::Ops& ops = kernels::active_ops();
  const int8_t* codes = codes_.data() + row * cols_ + col0;
  const float* in_scale =
      input_scale_.empty() ? nullptr : input_scale_.data() + col0;
  const int64_t gs = group_size_ > 0 ? group_size_ : cols_;
  int64_t done = 0;
  while (done < len) {
    const int64_t col = col0 + done;
    const int64_t group_end = (col / gs + 1) * gs;
    const int64_t span = std::min(len - done, group_end - col);
    ops.dequant_span_f32(codes + done, scales_.at(row, col / gs),
                         in_scale != nullptr ? in_scale + done : nullptr,
                         out + done, span);
    done += span;
  }
  // Outlier columns overwrite the quantized path.
  for (size_t k = 0; k < outlier_cols_.size(); ++k) {
    const int64_t c = outlier_cols_[k];
    if (c >= col0 && c < col0 + len) {
      out[c - col0] = outlier_weights_.at(row, static_cast<int64_t>(k));
    }
  }
}

void QuantizedTensor::save(BinaryWriter& w) const {
  w.write_i64(rows_);
  w.write_i64(cols_);
  w.write_u32(static_cast<uint32_t>(bits_));
  w.write_i64(group_size_);
  w.write_vector(codes_);
  scales_.save(w);
  w.write_vector(input_scale_);
  w.write_vector(outlier_cols_);
  outlier_weights_.save(w);
}

QuantizedTensor QuantizedTensor::load(BinaryReader& r) {
  const int64_t rows = r.read_i64();
  const int64_t cols = r.read_i64();
  const uint32_t bits_raw = r.read_u32();
  if (bits_raw != 4 && bits_raw != 8) throw SerializeError("bad quant bit width");
  const int64_t group_size = r.read_i64();
  QuantizedTensor q(rows, cols, static_cast<QuantBits>(bits_raw), group_size);
  q.codes_ = r.read_vector<int8_t>();
  if (static_cast<int64_t>(q.codes_.size()) != rows * cols) {
    throw SerializeError("quantized code payload mismatch");
  }
  q.scales_ = Tensor::load(r);
  q.input_scale_ = r.read_vector<float>();
  q.outlier_cols_ = r.read_vector<int32_t>();
  q.outlier_weights_ = Tensor::load(r);
  return q;
}

QuantizedTensor quantize_rtn(const Tensor& w, QuantBits bits, int64_t group_size) {
  if (w.rank() != 2) throw TensorError("quantize_rtn: rank-2 weight required");
  const int64_t rows = w.dim(0);
  const int64_t cols = w.dim(1);
  QuantizedTensor q(rows, cols, bits, group_size);
  const int64_t gs = group_size > 0 ? group_size : cols;
  const float qmax = static_cast<float>(q.qmax());
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    for (int64_t g = 0; g * gs < cols; ++g) {
      const int64_t begin = g * gs;
      const int64_t end = std::min(cols, begin + gs);
      float absmax = 0.0f;
      for (int64_t c = begin; c < end; ++c) absmax = std::max(absmax, std::fabs(row[c]));
      // A zero group keeps scale tiny-positive so dequantization is exact 0.
      const float scale = absmax > 0.0f ? absmax / qmax : 1e-8f;
      q.set_scale(r, g, scale);
      for (int64_t c = begin; c < end; ++c) {
        const float scaled = row[c] / scale;
        const int32_t code = std::clamp<int32_t>(
            static_cast<int32_t>(std::lround(scaled)), q.qmin(), q.qmax());
        q.set_code(r, c, static_cast<int8_t>(code));
      }
    }
  }
  return q;
}

void dequant_gemm_nt(const float* x, const QuantizedTensor& w, float* y,
                     int64_t m, bool accumulate) {
  gemm_nt_packed(
      x, y, m, w.cols(), w.rows(), accumulate,
      [&w](int64_t p0, int64_t pb, int64_t j0, int64_t jb, float* panel) {
        // Dequantize each weight row's K-slice (contiguous codes), then
        // transpose into the K-major panel the axpy sweep expects.
        float rowbuf[kGemmPanelK];
        for (int64_t j = 0; j < jb; ++j) {
          w.dequant_row_span(j0 + j, p0, pb, rowbuf);
          for (int64_t p = 0; p < pb; ++p) panel[p * jb + j] = rowbuf[p];
        }
      });
}

}  // namespace emmark
