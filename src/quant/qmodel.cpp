#include "quant/qmodel.h"

#include <stdexcept>

#include "util/threadpool.h"

namespace emmark {

const char* to_string(QuantMethod method) {
  switch (method) {
    case QuantMethod::kRtnInt8: return "rtn-int8";
    case QuantMethod::kSmoothQuantInt8: return "smoothquant-int8";
    case QuantMethod::kLlmInt8: return "llm.int8";
    case QuantMethod::kRtnInt4: return "rtn-int4";
    case QuantMethod::kAwqInt4: return "awq-int4";
    case QuantMethod::kGptqInt4: return "gptq-int4";
  }
  return "?";
}

QuantBits bits_of(QuantMethod method) {
  switch (method) {
    case QuantMethod::kRtnInt8:
    case QuantMethod::kSmoothQuantInt8:
    case QuantMethod::kLlmInt8:
      return QuantBits::kInt8;
    case QuantMethod::kRtnInt4:
    case QuantMethod::kAwqInt4:
    case QuantMethod::kGptqInt4:
      return QuantBits::kInt4;
  }
  return QuantBits::kInt8;
}

QuantizedModel::QuantizedModel(const TransformerLM& fp_model,
                               const ActivationStats& stats, QuantMethod method,
                               const QuantOptions& options)
    : method_(method), base_(fp_model.clone()) {
  auto linears = base_->quantizable_linears();
  // Layers quantize independently (the AWQ/GPTQ searches are the hot part);
  // pre-sized slots keep layer order identical to quantizable_linears().
  layers_.resize(linears.size());
  parallel_for_index(linears.size(), [&](size_t idx) {
    auto& ref = linears[idx];
    const LayerActivationStats& layer_stats = stats.find(ref.name);
    const Tensor& w = ref.linear->weight().value;
    QuantizedLayer layer;
    layer.name = ref.name;
    switch (method) {
      case QuantMethod::kRtnInt8:
        layer.weights = rtn(w, options.rtn_int8);
        break;
      case QuantMethod::kSmoothQuantInt8:
        layer.weights = smoothquant(w, layer_stats.abs_max, options.smooth);
        break;
      case QuantMethod::kLlmInt8:
        layer.weights = llmint8(w, layer_stats.abs_max, options.llmint8);
        break;
      case QuantMethod::kRtnInt4:
        layer.weights = rtn(w, options.rtn_int4);
        break;
      case QuantMethod::kAwqInt4:
        layer.weights = awq(w, layer_stats.abs_mean, options.awq).tensor;
        break;
      case QuantMethod::kGptqInt4:
        layer.weights = gptq(w, layer_stats.samples, options.gptq);
        break;
    }
    layers_[idx] = std::move(layer);
  });
}

QuantizedModel::QuantizedModel(const QuantizedModel& other)
    : method_(other.method_), layers_(other.layers_), base_(other.base_->clone()) {}

QuantizedModel& QuantizedModel::operator=(const QuantizedModel& other) {
  if (this != &other) {
    method_ = other.method_;
    layers_ = other.layers_;
    base_ = other.base_->clone();
  }
  return *this;
}

const QuantizedLayer& QuantizedModel::find_layer(const std::string& name) const {
  for (const auto& layer : layers_) {
    if (layer.name == name) return layer;
  }
  throw std::out_of_range("no quantized layer named " + name);
}

int64_t QuantizedModel::quantized_param_count() const {
  int64_t total = 0;
  for (const auto& layer : layers_) total += layer.weights.numel();
  return total;
}

uint64_t QuantizedModel::code_bytes() const {
  // Resident storage, not logical element count: packed int4 layers charge
  // two codes per byte, so an int4 model budgets ~half its int8 twin in
  // the ModelStore and the resident-bytes gauge.
  uint64_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.weights.storage_bytes();
  }
  return total;
}

namespace {
constexpr const char* kCodesMagic = "EMMQCODE";
constexpr uint32_t kCodesVersion = 1;
}  // namespace

void QuantizedModel::save_codes(const std::string& path) const {
  BinaryWriter writer(path, kCodesMagic, kCodesVersion);
  writer.write_string(to_string(method_));
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) {
    writer.write_string(layer.name);
    writer.write_i64(layer.weights.rows());
    writer.write_i64(layer.weights.cols());
    writer.write_vector(layer.weights.codes());
  }
  writer.close();
}

void QuantizedModel::load_codes(const std::string& path) {
  BinaryReader reader(path, kCodesMagic, kCodesVersion);
  const std::string method_name = reader.read_string();
  if (method_name != to_string(method_)) {
    throw SerializeError("codes snapshot quantized with " + method_name +
                         ", model uses " + to_string(method_));
  }
  const uint64_t count = reader.read_u64();
  if (count != layers_.size()) {
    throw SerializeError("codes snapshot layer count mismatch");
  }
  for (auto& layer : layers_) {
    const std::string name = reader.read_string();
    const int64_t rows = reader.read_i64();
    const int64_t cols = reader.read_i64();
    if (name != layer.name || rows != layer.weights.rows() ||
        cols != layer.weights.cols()) {
      throw SerializeError("codes snapshot does not match layer " + layer.name);
    }
    const std::vector<int8_t> codes = reader.read_vector<int8_t>();
    // The snapshot format is one int8 per code (unpacked) at every bit
    // width, so the expected size is the logical element count.
    if (codes.size() != static_cast<size_t>(layer.weights.numel())) {
      throw SerializeError("codes snapshot size mismatch in " + layer.name);
    }
    for (size_t i = 0; i < codes.size(); ++i) {
      layer.weights.set_code_flat(static_cast<int64_t>(i), codes[i]);
    }
  }
}

std::unique_ptr<TransformerLM> QuantizedModel::materialize() const {
  auto model = base_->clone();
  auto linears = model->quantizable_linears();
  if (linears.size() != layers_.size()) {
    throw std::logic_error("quantized layer count does not match model");
  }
  for (size_t i = 0; i < linears.size(); ++i) {
    if (linears[i].name != layers_[i].name) {
      throw std::logic_error("quantized layer order mismatch: " + linears[i].name);
    }
    linears[i].linear->weight().value = layers_[i].weights.dequantize();
  }
  return model;
}

std::unique_ptr<TransformerLM> QuantizedModel::materialize_view() const {
  auto model = base_->clone();
  auto linears = model->quantizable_linears();
  if (linears.size() != layers_.size()) {
    throw std::logic_error("quantized layer count does not match model");
  }
  for (size_t i = 0; i < linears.size(); ++i) {
    if (linears[i].name != layers_[i].name) {
      throw std::logic_error("quantized layer order mismatch: " + linears[i].name);
    }
    linears[i].linear->set_quantized_weight(&layers_[i].weights);
  }
  return model;
}

}  // namespace emmark
