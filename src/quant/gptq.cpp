#include "quant/gptq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace emmark {

Tensor cholesky(const Tensor& a) {
  if (a.rank() != 2 || a.dim(0) != a.dim(1)) {
    throw TensorError("cholesky: square matrix required");
  }
  const int64_t n = a.dim(0);
  Tensor l({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double acc = a.at(i, j);
      for (int64_t k = 0; k < j; ++k) acc -= static_cast<double>(l.at(i, k)) * l.at(j, k);
      if (i == j) {
        if (acc <= 0.0) throw TensorError("cholesky: matrix not positive definite");
        l.at(i, j) = static_cast<float>(std::sqrt(acc));
      } else {
        l.at(i, j) = static_cast<float>(acc / l.at(j, j));
      }
    }
  }
  return l;
}

Tensor spd_inverse(const Tensor& a) {
  const int64_t n = a.dim(0);
  const Tensor l = cholesky(a);
  // Solve L Y = I (forward), then L^T X = Y (backward); X = A^-1.
  Tensor inv({n, n});
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t col = 0; col < n; ++col) {
    for (int64_t i = 0; i < n; ++i) {
      double acc = (i == col) ? 1.0 : 0.0;
      for (int64_t k = 0; k < i; ++k) acc -= static_cast<double>(l.at(i, k)) * y[static_cast<size_t>(k)];
      y[static_cast<size_t>(i)] = acc / l.at(i, i);
    }
    for (int64_t i = n - 1; i >= 0; --i) {
      double acc = y[static_cast<size_t>(i)];
      for (int64_t k = i + 1; k < n; ++k) {
        acc -= static_cast<double>(l.at(k, i)) * inv.at(k, col);
      }
      inv.at(i, col) = static_cast<float>(acc / l.at(i, i));
    }
  }
  return inv;
}

QuantizedTensor gptq(const Tensor& weight, const Tensor& calib_inputs,
                     const GptqConfig& config) {
  if (weight.rank() != 2) throw TensorError("gptq: rank-2 weight required");
  if (calib_inputs.rank() != 2 || calib_inputs.dim(1) != weight.dim(1)) {
    throw TensorError("gptq: calibration inputs must be [N, in]");
  }
  const int64_t rows = weight.dim(0);
  const int64_t cols = weight.dim(1);
  const int64_t samples = calib_inputs.dim(0);

  // H = X^T X + damp I.
  Tensor h({cols, cols});
  gemm_tn(calib_inputs.data(), calib_inputs.data(), h.data(), cols, samples, cols);
  double diag_mean = 0.0;
  for (int64_t i = 0; i < cols; ++i) diag_mean += h.at(i, i);
  diag_mean /= static_cast<double>(cols);
  const float damp = static_cast<float>(std::max(config.percdamp * diag_mean, 1e-6));
  for (int64_t i = 0; i < cols; ++i) h.at(i, i) += damp;

  const Tensor hinv = spd_inverse(h);

  const int64_t gs = config.group_size > 0 ? config.group_size : cols;
  QuantizedTensor q(rows, cols, config.bits, config.group_size);
  const float qmax = static_cast<float>(q.qmax());

  // Mutable residual copy of the weights; rounding errors are propagated
  // into later columns.
  Tensor w = weight;
  for (int64_t g = 0; g * gs < cols; ++g) {
    const int64_t begin = g * gs;
    const int64_t end = std::min(cols, begin + gs);
    // Group scales from the current (error-compensated) residual weights.
    for (int64_t r = 0; r < rows; ++r) {
      float absmax = 0.0f;
      for (int64_t c = begin; c < end; ++c) absmax = std::max(absmax, std::fabs(w.at(r, c)));
      q.set_scale(r, g, absmax > 0.0f ? absmax / qmax : 1e-8f);
    }
    for (int64_t c = begin; c < end; ++c) {
      const float hinv_cc = hinv.at(c, c);
      for (int64_t r = 0; r < rows; ++r) {
        const float scale = q.scale(r, c);
        const float value = w.at(r, c);
        const int32_t code = std::clamp<int32_t>(
            static_cast<int32_t>(std::lround(value / scale)), q.qmin(), q.qmax());
        q.set_code(r, c, static_cast<int8_t>(code));
        const float dq = static_cast<float>(code) * scale;
        const float err = (value - dq) / hinv_cc;
        // Propagate into every remaining column of this row.
        for (int64_t k = c + 1; k < cols; ++k) {
          w.at(r, k) -= err * hinv.at(c, k);
        }
      }
    }
  }
  return q;
}

}  // namespace emmark
