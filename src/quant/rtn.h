// Round-to-nearest (RTN) baseline quantizer: Eq. 1 of the paper, applied
// group-wise with no activation awareness.
#pragma once

#include "quant/qtensor.h"
#include "tensor/tensor.h"

namespace emmark {

struct RtnConfig {
  QuantBits bits = QuantBits::kInt8;
  /// Columns per scale group; 0 = one scale per output row.
  int64_t group_size = 0;
};

QuantizedTensor rtn(const Tensor& weight, const RtnConfig& config);

}  // namespace emmark
