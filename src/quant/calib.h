// Activation calibration: per-channel statistics of the inputs feeding each
// quantizable linear layer.
//
// These statistics power four consumers:
//   * SmoothQuant's migration scales,
//   * LLM.int8()'s outlier-column detection,
//   * AWQ's activation-aware scale search + GPTQ's Hessian,
//   * EmMark's robustness score S_r (per-channel |A_f|).
// Collection runs the *full-precision* model over calibration batches and
// reads each Linear's cached input -- no hook machinery needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"
#include "util/serialize.h"

namespace emmark {

struct LayerActivationStats {
  std::string name;
  std::vector<float> abs_mean;  // per input channel, mean |activation|
  std::vector<float> abs_max;   // per input channel, max |activation|
  Tensor samples;               // [sample_rows, in] raw input rows (for GPTQ)
  int64_t observed_rows = 0;
};

struct ActivationStats {
  std::vector<LayerActivationStats> layers;  // order = quantizable_linears()

  const LayerActivationStats& find(const std::string& name) const;
  bool has(const std::string& name) const;

  void save(BinaryWriter& w) const;
  static ActivationStats load(BinaryReader& r);
};

struct CalibConfig {
  int64_t batches = 8;
  int64_t batch_size = 4;
  int64_t seq_len = 32;
  uint64_t seed = 23;
  /// Rows of raw inputs retained per layer for GPTQ's Hessian (0 disables).
  int64_t max_sample_rows = 256;
};

/// Runs `model` over windows of `stream` and aggregates per-layer stats.
ActivationStats collect_activation_stats(TransformerLM& model,
                                         const std::vector<TokenId>& stream,
                                         const CalibConfig& config);

}  // namespace emmark
