#include "quant/llmint8.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace emmark {

QuantizedTensor llmint8(const Tensor& weight,
                        const std::vector<float>& act_abs_max,
                        const LlmInt8Config& config) {
  if (weight.rank() != 2) throw TensorError("llmint8: rank-2 weight required");
  const int64_t rows = weight.dim(0);
  const int64_t cols = weight.dim(1);
  if (static_cast<int64_t>(act_abs_max.size()) != cols) {
    throw std::invalid_argument("llmint8: activation stats length mismatch");
  }

  const float mean_act =
      std::accumulate(act_abs_max.begin(), act_abs_max.end(), 0.0f) /
      static_cast<float>(cols);
  const float threshold = config.threshold_scale * std::max(mean_act, 1e-12f);

  std::vector<int32_t> outliers;
  for (int64_t c = 0; c < cols; ++c) {
    if (act_abs_max[static_cast<size_t>(c)] >= threshold) {
      outliers.push_back(static_cast<int32_t>(c));
    }
  }
  const auto max_outliers = static_cast<size_t>(
      config.max_outlier_fraction * static_cast<float>(cols));
  if (outliers.size() > max_outliers) {
    // Keep the strongest channels only.
    std::sort(outliers.begin(), outliers.end(), [&](int32_t a, int32_t b) {
      return act_abs_max[static_cast<size_t>(a)] > act_abs_max[static_cast<size_t>(b)];
    });
    outliers.resize(max_outliers);
    std::sort(outliers.begin(), outliers.end());
  }

  // Zero outlier columns before quantization so they do not inflate the
  // group scales, then stash their FP weights.
  Tensor trimmed = weight;
  Tensor outlier_weights({rows, std::max<int64_t>(1, static_cast<int64_t>(outliers.size()))});
  if (!outliers.empty()) {
    outlier_weights = Tensor({rows, static_cast<int64_t>(outliers.size())});
    for (size_t k = 0; k < outliers.size(); ++k) {
      const int64_t c = outliers[k];
      for (int64_t r = 0; r < rows; ++r) {
        outlier_weights.at(r, static_cast<int64_t>(k)) = weight.at(r, c);
        trimmed.at(r, c) = 0.0f;
      }
    }
  }

  QuantizedTensor q = quantize_rtn(trimmed, QuantBits::kInt8, config.group_size);
  if (!outliers.empty()) q.set_outliers(std::move(outliers), std::move(outlier_weights));
  return q;
}

}  // namespace emmark
