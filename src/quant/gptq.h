// GPTQ (Frantar et al., 2022): second-order post-training quantization.
//
// Columns are quantized one at a time; the rounding error of each column is
// propagated into the not-yet-quantized columns using the inverse Hessian
// H = X^T X + lambda I of the layer's calibration inputs (Cholesky form).
// This is the "non-WM 4" comparator in the paper's integrity experiment
// (Table 4): a GPTQ-quantized model must yield ~0% WER under an AWQ-keyed
// extraction.
#pragma once

#include "quant/qtensor.h"
#include "tensor/tensor.h"

namespace emmark {

struct GptqConfig {
  QuantBits bits = QuantBits::kInt4;
  int64_t group_size = 16;
  /// Hessian dampening as a fraction of mean(diag(H)).
  double percdamp = 0.01;
};

/// `calib_inputs` is a [N, in] sample of the layer's inputs (from
/// ActivationStats::samples).
QuantizedTensor gptq(const Tensor& weight, const Tensor& calib_inputs,
                     const GptqConfig& config);

/// Cholesky decomposition of a symmetric positive-definite matrix
/// (lower-triangular L with A = L L^T). Exposed for tests.
Tensor cholesky(const Tensor& a);

/// Inverse of an SPD matrix via its Cholesky factor. Exposed for tests.
Tensor spd_inverse(const Tensor& a);

}  // namespace emmark
