// QuantizedModel: an embedded (compressed + quantized) LLM.
//
// Holds one QuantizedTensor per "quantization layer" (every attention/FFN
// projection plus the LM head) together with the FP parts of the network
// (embeddings, norms, biases). materialize() produces a fake-quant FP model
// -- dequantized effective weights substituted into a clone of the base --
// which is how perplexity / zero-shot quality of the embedded model is
// measured throughout the reproduction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/transformer.h"
#include "quant/awq.h"
#include "quant/calib.h"
#include "quant/gptq.h"
#include "quant/llmint8.h"
#include "quant/qtensor.h"
#include "quant/rtn.h"
#include "quant/smoothquant.h"

namespace emmark {

enum class QuantMethod {
  kRtnInt8,
  kSmoothQuantInt8,  // paper: OPT family INT8
  kLlmInt8,          // paper: LLaMA-2 family INT8
  kRtnInt4,
  kAwqInt4,          // paper: all INT4 models
  kGptqInt4,         // paper: Table 4 integrity comparator
};

const char* to_string(QuantMethod method);
QuantBits bits_of(QuantMethod method);

struct QuantOptions {
  RtnConfig rtn_int8{QuantBits::kInt8, 0};
  RtnConfig rtn_int4{QuantBits::kInt4, 16};
  SmoothQuantConfig smooth{};
  LlmInt8Config llmint8{};
  AwqConfig awq{};
  GptqConfig gptq{};
};

struct QuantizedLayer {
  std::string name;
  QuantizedTensor weights;
};

class QuantizedModel {
 public:
  /// Quantizes every quantizable linear of `fp_model` with `method`.
  /// `stats` must come from the same (full-precision) model.
  QuantizedModel(const TransformerLM& fp_model, const ActivationStats& stats,
                 QuantMethod method, const QuantOptions& options = {});

  /// Deep copy (watermark insertion operates on a copy).
  QuantizedModel(const QuantizedModel& other);
  QuantizedModel& operator=(const QuantizedModel& other);
  QuantizedModel(QuantizedModel&&) noexcept = default;
  QuantizedModel& operator=(QuantizedModel&&) noexcept = default;

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  QuantizedLayer& layer(int64_t i) { return layers_[static_cast<size_t>(i)]; }
  const QuantizedLayer& layer(int64_t i) const { return layers_[static_cast<size_t>(i)]; }
  const QuantizedLayer& find_layer(const std::string& name) const;

  QuantMethod method() const { return method_; }
  QuantBits bits() const { return bits_of(method_); }
  const ModelConfig& config() const { return base_->config(); }

  /// Total number of quantized weight elements.
  int64_t quantized_param_count() const;

  /// Bytes held by the integer code buffers across every layer: the
  /// model's dominant resident footprint, and the unit ModelStore's
  /// byte-budget eviction accounts in (zoo models vary ~30x in size, so an
  /// entry-count cap alone mis-sizes the cache).
  uint64_t code_bytes() const;

  /// Fake-quant evaluation model: clone of the FP base with each linear's
  /// weight replaced by the dequantized effective weight.
  std::unique_ptr<TransformerLM> materialize() const;

  /// Fused-eval twin of materialize(): a clone whose linears stream this
  /// model's int8 codes through the fused dequant-GEMM instead of holding
  /// dequantized weight tensors -- no O(rows * cols) FP temporaries, same
  /// forwards bit for bit (see quant/qtensor.h). The view borrows the
  /// codes: it is valid only while this QuantizedModel is alive and its
  /// layers are not resized. backward() through the view throws.
  std::unique_ptr<TransformerLM> materialize_view() const;

  /// Codes snapshot: just the integer codes of every layer. Watermarking
  /// only flips codes (scales/outliers/base weights are untouched), so a
  /// snapshot applied onto a freshly re-quantized original reconstructs the
  /// deployed model exactly -- the artifact emmark_cli ships between its
  /// insert and extract/verify/trace runs.
  void save_codes(const std::string& path) const;
  /// Overwrites this model's codes from a snapshot; throws SerializeError
  /// when layer names or shapes do not line up.
  void load_codes(const std::string& path);

 private:
  QuantMethod method_;
  std::vector<QuantizedLayer> layers_;
  std::unique_ptr<TransformerLM> base_;
};

}  // namespace emmark
