// LLM.int8() (Dettmers et al., 2022): mixed-precision decomposition.
//
// Input channels whose calibration activation magnitude exceeds a threshold
// are treated as outliers: their weight columns stay in FP16/FP32 while the
// rest of the matrix is quantized to INT8. The paper uses this for the
// LLaMA-2 family INT8 models.
#pragma once

#include <vector>

#include "quant/qtensor.h"
#include "tensor/tensor.h"

namespace emmark {

struct LlmInt8Config {
  /// Channels with act_abs_max >= threshold_scale * mean(act_abs_max) are
  /// outliers (the original paper uses an absolute 6.0 threshold on hidden
  /// states; a relative rule is robust to our smaller activations).
  float threshold_scale = 4.0f;
  /// Upper bound on the outlier fraction (safety valve).
  float max_outlier_fraction = 0.1f;
  int64_t group_size = 0;
};

QuantizedTensor llmint8(const Tensor& weight,
                        const std::vector<float>& act_abs_max,
                        const LlmInt8Config& config);

}  // namespace emmark
