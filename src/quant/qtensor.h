// Quantized weight tensor: the object EmMark watermarks.
//
// Symmetric integer quantization following Eq. 1 of the paper:
//     q = round(w / scale),  scale = absmax / qmax
// with group-wise scales along the input (column) dimension. INT4 codes are
// stored in int8_t slots with range [-7, 7] (symmetric, no -8, matching
// AWQ-style symmetric grids). Two optional decorations cover the paper's
// quantizer families:
//   * input_scale (SmoothQuant / AWQ): effective weight is
//     dequant(q) / s per column -- i.e. y = (x/s) . (s o W)_q^T.
//   * outlier columns (LLM.int8()): listed columns bypass quantization and
//     keep FP weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"

namespace emmark {

enum class QuantBits : int32_t { kInt4 = 4, kInt8 = 8 };

const char* to_string(QuantBits bits);

/// Largest positive code for a bit width (symmetric grid: [-qmax, qmax]).
int32_t qmax_for(QuantBits bits);

class QuantizedTensor {
 public:
  QuantizedTensor() = default;
  /// Allocates codes/scales for a [rows, cols] weight with `group_size`
  /// columns per scale group (group_size == 0 means one group per row).
  QuantizedTensor(int64_t rows, int64_t cols, QuantBits bits, int64_t group_size);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  QuantBits bits() const { return bits_; }
  int32_t qmin() const { return -qmax_for(bits_); }
  int32_t qmax() const { return qmax_for(bits_); }
  int64_t group_size() const { return group_size_; }
  int64_t groups_per_row() const { return groups_per_row_; }

  // -- codes -----------------------------------------------------------
  int8_t code(int64_t row, int64_t col) const {
    return codes_[static_cast<size_t>(row * cols_ + col)];
  }
  void set_code(int64_t row, int64_t col, int8_t value);
  /// Flat accessors (index = row * cols + col) used by the watermark.
  int8_t code_flat(int64_t index) const { return codes_[static_cast<size_t>(index)]; }
  void set_code_flat(int64_t index, int8_t value);
  const std::vector<int8_t>& codes() const { return codes_; }

  /// Raw views of the contiguous [rows * cols] code buffer for the SIMD
  /// kernels (src/kernels/). The mutable span bypasses set_code_flat's
  /// per-element grid check: callers must guarantee every written value
  /// stays within [qmin, qmax] (the watermark stamp does -- derivation
  /// never selects a saturated weight -- as does pruning to 0).
  const int8_t* code_data() const { return codes_.data(); }
  int8_t* code_data_mut() { return codes_.data(); }

  /// True when the code sits at the min or max quantization level; EmMark
  /// excludes such weights so +-1 never clips.
  bool is_saturated(int64_t row, int64_t col) const;
  bool is_saturated_flat(int64_t index) const;

  // -- scales / decorations ---------------------------------------------
  float scale(int64_t row, int64_t col) const;
  void set_scale(int64_t row, int64_t group, float value);

  bool has_input_scale() const { return !input_scale_.empty(); }
  const std::vector<float>& input_scale() const { return input_scale_; }
  void set_input_scale(std::vector<float> s);

  const std::vector<int32_t>& outlier_cols() const { return outlier_cols_; }
  /// Marks `cols` as FP outliers with the given weights [rows, cols.size()].
  void set_outliers(std::vector<int32_t> cols, Tensor weights);
  bool is_outlier_col(int64_t col) const;

  // -- reconstruction ----------------------------------------------------
  /// Effective FP weight W_eff with all decorations folded in, such that
  /// y = x . W_eff^T reproduces the quantized layer's forward.
  Tensor dequantize() const;
  /// Dequantized value of a single element (0 contribution path for
  /// outlier columns returns the FP outlier weight).
  float dequantize_at(int64_t row, int64_t col) const;
  /// Dequantizes W_eff[row][col0 .. col0+len) into `out` through the
  /// dispatched dequant kernel: group-aligned segments stream through
  /// dequant_span_f32, then in-range outlier columns overwrite. The
  /// building block both dequantize() and the fused dequant-GEMM share,
  /// which is what makes fused == materialize-then-multiply bitwise.
  void dequant_row_span(int64_t row, int64_t col0, int64_t len,
                        float* out) const;

  // -- persistence --------------------------------------------------------
  void save(BinaryWriter& w) const;
  static QuantizedTensor load(BinaryReader& r);

 private:
  int64_t group_index(int64_t col) const {
    return group_size_ > 0 ? col / group_size_ : 0;
  }

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  QuantBits bits_ = QuantBits::kInt8;
  int64_t group_size_ = 0;
  int64_t groups_per_row_ = 1;
  std::vector<int8_t> codes_;       // [rows * cols]
  Tensor scales_;                   // [rows, groups_per_row]
  std::vector<float> input_scale_;  // [cols] or empty
  std::vector<int32_t> outlier_cols_;
  Tensor outlier_weights_;          // [rows, outlier_cols.size()]
};

/// Plain round-to-nearest group-wise quantization of `w` [rows, cols].
QuantizedTensor quantize_rtn(const Tensor& w, QuantBits bits, int64_t group_size);

/// Fused dequantize-GEMM: Y(M,N) += X(M, w.cols) * W_eff(w.rows, w.cols)^T
/// without materializing W_eff. Panels of int8 codes dequantize straight
/// into the gemm_nt_packed driver's cache-resident scratch, so eval-path
/// forwards touch O(panel) float temporaries instead of an O(rows * cols)
/// dequantize() tensor. Bit-identical to w.dequantize() + gemm_nt (same
/// per-element dequant ops, same ascending-K summation order).
void dequant_gemm_nt(const float* x, const QuantizedTensor& w, float* y,
                     int64_t m, bool accumulate = false);

}  // namespace emmark
