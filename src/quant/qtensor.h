// Quantized weight tensor: the object EmMark watermarks.
//
// Symmetric integer quantization following Eq. 1 of the paper:
//     q = round(w / scale),  scale = absmax / qmax
// with group-wise scales along the input (column) dimension. INT4 codes use
// the range [-7, 7] (symmetric, no -8, matching AWQ-style symmetric grids)
// and are stored PACKED, two codes per byte: even column in the low nibble,
// odd column in the high nibble, row stride (cols + 1) / 2 bytes (see the
// nibble codec in kernels/kernels.h). INT8 codes stay one byte per code.
// Element accessors and the unpacked views below hide the layout; the
// dequant path reads packed rows directly through the dispatched
// dequant_packed_span_f32 kernel, so fused eval panels move half the code
// bytes an unpacked layout would. Two optional decorations cover the
// paper's quantizer families:
//   * input_scale (SmoothQuant / AWQ): effective weight is
//     dequant(q) / s per column -- i.e. y = (x/s) . (s o W)_q^T.
//   * outlier columns (LLM.int8()): listed columns bypass quantization and
//     keep FP weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"

namespace emmark {

enum class QuantBits : int32_t { kInt4 = 4, kInt8 = 8 };

const char* to_string(QuantBits bits);

/// Largest positive code for a bit width (symmetric grid: [-qmax, qmax]).
int32_t qmax_for(QuantBits bits);

class QuantizedTensor {
 public:
  QuantizedTensor() = default;
  /// Allocates codes/scales for a [rows, cols] weight with `group_size`
  /// columns per scale group (group_size == 0 means one group per row).
  QuantizedTensor(int64_t rows, int64_t cols, QuantBits bits, int64_t group_size);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  QuantBits bits() const { return bits_; }
  int32_t qmin() const { return -qmax_for(bits_); }
  int32_t qmax() const { return qmax_for(bits_); }
  int64_t group_size() const { return group_size_; }
  int64_t groups_per_row() const { return groups_per_row_; }

  // -- codes -----------------------------------------------------------
  int8_t code(int64_t row, int64_t col) const;
  void set_code(int64_t row, int64_t col, int8_t value);
  /// Flat accessors (index = row * cols + col) used by the watermark.
  int8_t code_flat(int64_t index) const {
    return code(index / cols_, index % cols_);
  }
  void set_code_flat(int64_t index, int8_t value);
  /// The full code grid, UNPACKED to one int8 per code regardless of the
  /// storage layout (a copy for int4; serialization and the attack suite
  /// compare grids through this).
  std::vector<int8_t> codes() const;

  /// Read-only unpacked view of the contiguous [rows * cols] code grid for
  /// the SIMD kernels (src/kernels/). For int8 it aliases the resident
  /// buffer (zero copy); for packed int4 it owns an unpacked scratch copy.
  /// Keep the view alive for as long as data() is dereferenced.
  class CodesView {
   public:
    const int8_t* data() const { return ptr_; }

    CodesView(CodesView&&) noexcept = default;
    CodesView(const CodesView&) = delete;
    CodesView& operator=(const CodesView&) = delete;
    CodesView& operator=(CodesView&&) = delete;

   private:
    friend class QuantizedTensor;
    CodesView() = default;
    std::vector<int8_t> scratch_;  // int4 only; ptr_ targets its heap buffer
    const int8_t* ptr_ = nullptr;
  };
  CodesView codes_view() const;

  /// Mutable unpacked view. For int8 it writes through to the resident
  /// buffer; for packed int4 it unpacks into scratch at construction and
  /// REPACKS AT DESTRUCTION -- finish all writes before the guard dies,
  /// and never hold two mutable views of one tensor. Like the old raw
  /// pointer it replaces, writes bypass the per-element grid check:
  /// callers must keep every value within [qmin, qmax] (the watermark
  /// stamp does -- derivation never selects a saturated weight -- as does
  /// pruning to 0).
  class CodesMut {
   public:
    int8_t* data() const { return ptr_; }

    ~CodesMut() {
      if (owner_ != nullptr) owner_->pack_from(scratch_.data());
    }
    CodesMut(CodesMut&& other) noexcept
        : owner_(other.owner_),
          scratch_(std::move(other.scratch_)),
          ptr_(other.ptr_) {
      other.owner_ = nullptr;
      other.ptr_ = nullptr;
    }
    CodesMut(const CodesMut&) = delete;
    CodesMut& operator=(const CodesMut&) = delete;
    CodesMut& operator=(CodesMut&&) = delete;

   private:
    friend class QuantizedTensor;
    CodesMut() = default;
    QuantizedTensor* owner_ = nullptr;  // int4 only: repack target
    std::vector<int8_t> scratch_;
    int8_t* ptr_ = nullptr;
  };
  CodesMut codes_mut();

  /// Bytes the resident code buffer actually occupies: rows * cols for
  /// int8, rows * ceil(cols / 2) for packed int4. This is the number the
  /// ModelStore residency budget and the resident-bytes gauge charge.
  uint64_t storage_bytes() const { return static_cast<uint64_t>(codes_.size()); }

  /// Hints the cache that `row`'s packed K-slice starting at col0 is about
  /// to stream through dequant_row_span (panel packers call it one row
  /// ahead). No-op past the last row; never changes results.
  void prefetch_row_span(int64_t row, int64_t col0) const {
    if (row >= rows_) return;
    __builtin_prefetch(codes_.data() + storage_offset(row, col0));
  }

  /// True when the code sits at the min or max quantization level; EmMark
  /// excludes such weights so +-1 never clips.
  bool is_saturated(int64_t row, int64_t col) const;
  bool is_saturated_flat(int64_t index) const;

  // -- scales / decorations ---------------------------------------------
  float scale(int64_t row, int64_t col) const;
  void set_scale(int64_t row, int64_t group, float value);

  bool has_input_scale() const { return !input_scale_.empty(); }
  const std::vector<float>& input_scale() const { return input_scale_; }
  void set_input_scale(std::vector<float> s);

  const std::vector<int32_t>& outlier_cols() const { return outlier_cols_; }
  /// Marks `cols` as FP outliers with the given weights [rows, cols.size()].
  void set_outliers(std::vector<int32_t> cols, Tensor weights);
  bool is_outlier_col(int64_t col) const;

  // -- reconstruction ----------------------------------------------------
  /// Effective FP weight W_eff with all decorations folded in, such that
  /// y = x . W_eff^T reproduces the quantized layer's forward.
  Tensor dequantize() const;
  /// Dequantized value of a single element (0 contribution path for
  /// outlier columns returns the FP outlier weight).
  float dequantize_at(int64_t row, int64_t col) const;
  /// Dequantizes W_eff[row][col0 .. col0+len) into `out` through the
  /// dispatched dequant kernel: group-aligned segments stream through
  /// dequant_span_f32 (int8) or dequant_packed_span_f32 (packed int4 --
  /// nibbles decode straight out of the resident bytes, no unpack copy),
  /// then in-range outlier columns overwrite. The
  /// building block both dequantize() and the fused dequant-GEMM share,
  /// which is what makes fused == materialize-then-multiply bitwise.
  void dequant_row_span(int64_t row, int64_t col0, int64_t len,
                        float* out) const;

  // -- persistence --------------------------------------------------------
  void save(BinaryWriter& w) const;
  static QuantizedTensor load(BinaryReader& r);

 private:
  int64_t group_index(int64_t col) const {
    return group_size_ > 0 ? col / group_size_ : 0;
  }
  bool packed() const { return bits_ == QuantBits::kInt4; }
  /// Byte offset of (row, col)'s storage slot in codes_.
  int64_t storage_offset(int64_t row, int64_t col) const {
    return packed() ? row * row_stride_ + (col >> 1) : row * cols_ + col;
  }
  /// Decodes the whole grid into out[rows * cols], one int8 per code.
  void unpack_into(int8_t* out) const;
  /// Encodes unpacked[rows * cols] into the resident layout (no grid
  /// check; see CodesMut).
  void pack_from(const int8_t* unpacked);

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  QuantBits bits_ = QuantBits::kInt8;
  int64_t group_size_ = 0;
  int64_t groups_per_row_ = 1;
  int64_t row_stride_ = 0;          // bytes per row of codes_
  std::vector<int8_t> codes_;       // [rows * row_stride] (int4: packed)
  Tensor scales_;                   // [rows, groups_per_row]
  std::vector<float> input_scale_;  // [cols] or empty
  std::vector<int32_t> outlier_cols_;
  Tensor outlier_weights_;          // [rows, outlier_cols.size()]
};

/// Plain round-to-nearest group-wise quantization of `w` [rows, cols].
QuantizedTensor quantize_rtn(const Tensor& w, QuantBits bits, int64_t group_size);

/// Fused dequantize-GEMM: Y(M,N) += X(M, w.cols) * W_eff(w.rows, w.cols)^T
/// without materializing W_eff. Panels of int8 codes dequantize straight
/// into the gemm_nt_packed driver's cache-resident scratch, so eval-path
/// forwards touch O(panel) float temporaries instead of an O(rows * cols)
/// dequantize() tensor. Bit-identical to w.dequantize() + gemm_nt (same
/// per-element dequant ops, same ascending-K summation order).
void dequant_gemm_nt(const float* x, const QuantizedTensor& w, float* y,
                     int64_t m, bool accumulate = false);

}  // namespace emmark
