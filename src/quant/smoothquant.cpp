#include "quant/smoothquant.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace emmark {

QuantizedTensor smoothquant(const Tensor& weight,
                            const std::vector<float>& act_abs_max,
                            const SmoothQuantConfig& config) {
  if (weight.rank() != 2) throw TensorError("smoothquant: rank-2 weight required");
  const int64_t cols = weight.dim(1);
  if (static_cast<int64_t>(act_abs_max.size()) != cols) {
    throw std::invalid_argument("smoothquant: activation stats length mismatch");
  }

  const std::vector<float> w_col_max = column_abs_max(weight);
  std::vector<float> s(static_cast<size_t>(cols), 1.0f);
  for (int64_t c = 0; c < cols; ++c) {
    const float act = std::max(act_abs_max[static_cast<size_t>(c)], 1e-5f);
    const float wmx = std::max(w_col_max[static_cast<size_t>(c)], 1e-5f);
    const float value = std::pow(act, config.alpha) /
                        std::pow(wmx, 1.0f - config.alpha);
    s[static_cast<size_t>(c)] = std::clamp(value, 1e-4f, 1e4f);
  }

  // Quantize the smoothed weight s o W.
  Tensor smoothed = weight;
  for (int64_t r = 0; r < weight.dim(0); ++r) {
    float* row = smoothed.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] *= s[static_cast<size_t>(c)];
  }
  QuantizedTensor q = quantize_rtn(smoothed, config.bits, config.group_size);
  q.set_input_scale(std::move(s));
  return q;
}

}  // namespace emmark
