#include "quant/awq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emmark {
namespace {

std::vector<float> awq_scales(const std::vector<float>& act_abs_mean, float alpha) {
  const int64_t cols = static_cast<int64_t>(act_abs_mean.size());
  float mean = 0.0f;
  for (float a : act_abs_mean) mean += a;
  mean = std::max(mean / static_cast<float>(cols), 1e-12f);
  std::vector<float> s(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    const float ratio = std::max(act_abs_mean[static_cast<size_t>(c)], 1e-8f) / mean;
    s[static_cast<size_t>(c)] = std::clamp(std::pow(ratio, alpha), 1e-4f, 1e4f);
  }
  return s;
}

QuantizedTensor quantize_scaled(const Tensor& weight, const std::vector<float>& s,
                                const AwqConfig& config) {
  const int64_t rows = weight.dim(0);
  const int64_t cols = weight.dim(1);
  Tensor scaled = weight;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = scaled.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] *= s[static_cast<size_t>(c)];
  }
  QuantizedTensor q = quantize_rtn(scaled, config.bits, config.group_size);
  q.set_input_scale(s);
  return q;
}

double weighted_reconstruction_error(const Tensor& weight, const QuantizedTensor& q,
                                     const std::vector<float>& act_abs_mean) {
  const Tensor recon = q.dequantize();
  const int64_t rows = weight.dim(0);
  const int64_t cols = weight.dim(1);
  double err = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const float* wr = weight.data() + r * cols;
    const float* qr = recon.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = static_cast<double>(wr[c]) - qr[c];
      const double a = act_abs_mean[static_cast<size_t>(c)];
      err += a * a * d * d;
    }
  }
  return err;
}

}  // namespace

AwqResult awq(const Tensor& weight, const std::vector<float>& act_abs_mean,
              const AwqConfig& config) {
  if (weight.rank() != 2) throw TensorError("awq: rank-2 weight required");
  if (static_cast<int64_t>(act_abs_mean.size()) != weight.dim(1)) {
    throw std::invalid_argument("awq: activation stats length mismatch");
  }
  if (config.grid_points < 1) throw std::invalid_argument("awq: grid_points must be >= 1");

  AwqResult best;
  bool have_best = false;
  for (int64_t g = 0; g <= config.grid_points; ++g) {
    const float alpha =
        static_cast<float>(g) / static_cast<float>(config.grid_points);
    const std::vector<float> s = awq_scales(act_abs_mean, alpha);
    QuantizedTensor q = quantize_scaled(weight, s, config);
    const double err = weighted_reconstruction_error(weight, q, act_abs_mean);
    if (!have_best || err < best.best_error) {
      best.tensor = std::move(q);
      best.best_alpha = alpha;
      best.best_error = err;
      have_best = true;
    }
  }
  return best;
}

}  // namespace emmark
