// AWQ (Lin et al., 2023): activation-aware weight quantization.
//
// Salient weight channels (large mean |activation|) are protected by a
// per-channel scale s_j = (a_j / mean(a))^alpha before group-wise low-bit
// quantization; alpha is grid-searched to minimize the activation-weighted
// reconstruction error
//
//     err(alpha) = sum_j a_j^2 * || Q(s o W)_j / s_j - W_j ||^2 .
//
// The paper quantizes all INT4 models with AWQ, and EmMark's saliency score
// S_r leans on the same activation statistics.
#pragma once

#include <vector>

#include "quant/qtensor.h"
#include "tensor/tensor.h"

namespace emmark {

struct AwqConfig {
  QuantBits bits = QuantBits::kInt4;
  int64_t group_size = 16;
  int64_t grid_points = 20;  // alpha in {0, 1/g, ..., 1}
};

struct AwqResult {
  QuantizedTensor tensor;
  float best_alpha = 0.0f;
  double best_error = 0.0;
};

/// `act_abs_mean` is the calibration per-input-channel mean |activation|.
AwqResult awq(const Tensor& weight, const std::vector<float>& act_abs_mean,
              const AwqConfig& config);

}  // namespace emmark
