#include "signal/dct.h"

#include <cmath>
#include <numbers>

namespace emmark {

std::vector<double> dct2(std::span<const double> x) {
  const size_t n = x.size();
  std::vector<double> y(n, 0.0);
  if (n == 0) return y;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) * static_cast<double>(k));
    }
    y[k] = acc * (k == 0 ? norm0 : norm);
  }
  return y;
}

std::vector<double> idct2(std::span<const double> y) {
  const size_t n = y.size();
  std::vector<double> x(n, 0.0);
  if (n == 0) return x;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    double acc = y[0] * norm0;
    for (size_t k = 1; k < n; ++k) {
      acc += y[k] * norm *
             std::cos(std::numbers::pi / static_cast<double>(n) *
                      (static_cast<double>(i) + 0.5) * static_cast<double>(k));
    }
    x[i] = acc;
  }
  return x;
}

std::vector<float> dct2(std::span<const float> x) {
  std::vector<double> tmp(x.begin(), x.end());
  const auto y = dct2(std::span<const double>(tmp));
  return {y.begin(), y.end()};
}

std::vector<float> idct2(std::span<const float> y) {
  std::vector<double> tmp(y.begin(), y.end());
  const auto x = idct2(std::span<const double>(tmp));
  return {x.begin(), x.end()};
}

}  // namespace emmark
