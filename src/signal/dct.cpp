#include "signal/dct.h"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "kernels/kernels.h"
#include "util/phaseprof.h"

namespace emmark {
namespace {

// Cosine table for the fast DCT: tab[m] = cos(pi * m / (2n)) for
// m in [0, 4n). Every angle both transforms need folds onto it exactly --
// pi/n * (i + 1/2) * k == pi/(2n) * ((2i + 1) * k), and cosine has period
// 2*pi == index 4n -- so the inner loops become a modular index walk over
// the table instead of an O(n^2) std::cos stream. Tables are cached per
// distinct n (64 KB at SpecMark's 2048-element chunks; the registry only
// ever holds the chunk size plus a few tail/test lengths).
const std::vector<double>& cos_table(size_t n) {
  static std::mutex mu;
  static std::map<size_t, std::vector<double>> tables;
  std::lock_guard<std::mutex> lock(mu);
  auto [it, fresh] = tables.try_emplace(n);
  if (fresh) {
    std::vector<double>& tab = it->second;
    tab.resize(4 * n);
    for (size_t m = 0; m < 4 * n; ++m) {
      tab[m] = std::cos(std::numbers::pi * static_cast<double>(m) /
                        (2.0 * static_cast<double>(n)));
    }
  }
  // Map nodes are never erased, so the reference outlives the lock.
  return it->second;
}

/// Builds row[j] = tab[(first + j * step) mod 4n] for j in [0, n): the
/// cosine factors one input element contributes to every output lane.
/// first/step are already reduced mod 4n, so one conditional subtract
/// keeps the index in range.
void cos_row(const std::vector<double>& tab, size_t four_n, size_t first,
             size_t step, double* row, size_t n) {
  size_t idx = first;
  for (size_t j = 0; j < n; ++j) {
    row[j] = tab[idx];
    idx += step;
    if (idx >= four_n) idx -= four_n;
  }
}

// Both transforms accumulate whole output rows through the dispatched
// axpy_f64: lanes are independent outputs, and per output the sum order
// (ascending i for DCT-II, ascending k for DCT-III) matches the naive
// double loop, so results are bit-identical at every kernel level and
// thread count. Src is double or float; float inputs convert element-wise
// inside the loop (no input-copy temporary).

template <typename Src>
std::vector<double> dct2_core(const Src* x, size_t n) {
  phaseprof::ScopedTimer timer(phaseprof::Phase::kDct);
  std::vector<double> y(n, 0.0);
  if (n == 0) return y;
  const std::vector<double>& tab = cos_table(n);
  const kernels::Ops& ops = kernels::active_ops();
  const size_t four_n = 4 * n;
  std::vector<double> row(n);
  for (size_t i = 0; i < n; ++i) {
    // Angle of x[i] at output k: pi/(2n) * (2i+1) * k -> table stride 2i+1.
    cos_row(tab, four_n, 0, (2 * i + 1) % four_n, row.data(), n);
    ops.axpy_f64(y.data(), row.data(), static_cast<double>(x[i]),
                 static_cast<int64_t>(n));
  }
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  y[0] *= norm0;
  for (size_t k = 1; k < n; ++k) y[k] *= norm;
  return y;
}

template <typename Src>
std::vector<double> idct2_core(const Src* y, size_t n) {
  phaseprof::ScopedTimer timer(phaseprof::Phase::kDct);
  std::vector<double> x(n, 0.0);
  if (n == 0) return x;
  const std::vector<double>& tab = cos_table(n);
  const kernels::Ops& ops = kernels::active_ops();
  const size_t four_n = 4 * n;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  // k == 0 carries no cosine factor: every output starts at y[0] * norm0.
  const double dc = static_cast<double>(y[0]) * norm0;
  for (size_t i = 0; i < n; ++i) x[i] = dc;
  std::vector<double> row(n);
  for (size_t k = 1; k < n; ++k) {
    // Angle of y[k] at output i: pi/(2n) * (2i+1) * k -> first index k,
    // table stride 2k.
    cos_row(tab, four_n, k % four_n, (2 * k) % four_n, row.data(), n);
    ops.axpy_f64(x.data(), row.data(), static_cast<double>(y[k]) * norm,
                 static_cast<int64_t>(n));
  }
  return x;
}

}  // namespace

std::vector<double> dct2(std::span<const double> x) {
  return dct2_core(x.data(), x.size());
}

std::vector<double> idct2(std::span<const double> y) {
  return idct2_core(y.data(), y.size());
}

std::vector<float> dct2(std::span<const float> x) {
  const std::vector<double> y = dct2_core(x.data(), x.size());
  return {y.begin(), y.end()};
}

std::vector<float> idct2(std::span<const float> y) {
  const std::vector<double> x = idct2_core(y.data(), y.size());
  return {x.begin(), x.end()};
}

}  // namespace emmark
