// Orthonormal DCT-II and its inverse (DCT-III), the transform SpecMark uses
// to embed signatures in the spectral domain of weight vectors.
//
// O(n^2) direct evaluation: quantization-layer weight vectors in this
// reproduction are a few thousand elements, where the direct form is both
// fast enough and trivially correct.
#pragma once

#include <span>
#include <vector>

namespace emmark {

/// y[k] = c_k * sum_n x[n] cos(pi/N * (n + 1/2) * k), orthonormal scaling.
std::vector<double> dct2(std::span<const double> x);

/// Inverse of dct2 (orthonormal DCT-III).
std::vector<double> idct2(std::span<const double> y);

/// Convenience float overloads (compute in double, cast back).
std::vector<float> dct2(std::span<const float> x);
std::vector<float> idct2(std::span<const float> y);

}  // namespace emmark
