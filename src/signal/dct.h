// Orthonormal DCT-II and its inverse (DCT-III), the transform SpecMark uses
// to embed signatures in the spectral domain of weight vectors.
//
// Still the O(n^2) direct form (chunk vectors here are a few thousand
// elements), but the inner loops walk a precomputed 4n-entry cosine table
// -- every DCT angle folds onto it exactly -- and accumulate whole output
// rows through the dispatched axpy_f64 kernel (src/kernels), so the per
// element cost is a table load and one vector mul+add instead of a
// std::cos call. Per-output summation order is fixed, so results are
// bit-identical across every kernel dispatch level.
#pragma once

#include <span>
#include <vector>

namespace emmark {

/// y[k] = c_k * sum_n x[n] cos(pi/N * (n + 1/2) * k), orthonormal scaling.
std::vector<double> dct2(std::span<const double> x);

/// Inverse of dct2 (orthonormal DCT-III).
std::vector<double> idct2(std::span<const double> y);

/// Float overloads: compute in double with element-wise conversion inside
/// the kernel path (no whole-vector conversion temporaries).
std::vector<float> dct2(std::span<const float> x);
std::vector<float> idct2(std::span<const float> y);

}  // namespace emmark
