// Supervisor: the process-shard front door.
//
// `emmark_cli serve --process-shards` runs one of these in the parent
// process. It spawns one shard-worker process per shard (src/cli/worker.h
// -- the unchanged router/engine/store stack behind a Unix-domain
// socket), owns the consistent-hash ring, and proxies the docs/PROTOCOL.md
// line protocol between TCP clients and the owning worker. The same
// listening port also speaks minimal HTTP/1.1 (sniffed from the first
// bytes of a connection): `GET /metrics` returns the fleet-merged
// Prometheus exposition, `POST /v1/<verb>` carries one request line
// (docs/PROTOCOL.md §8).
//
// Fault model: a worker dying (crash, OOM kill, SIGKILL) is detected via
// waitpid(WNOHANG) each poll cycle plus EOF on its links. Every request
// in flight on that worker fails with a structured retryable error
// (`"retryable":true`) while sibling shards keep serving untouched; the
// supervisor respawns the worker with bounded exponential backoff
// (doubling per consecutive failure up to a cap, reset after the worker
// stays healthy). Fan-out verbs (`stats`, `metrics`, `quit`) degrade to
// the live subset of workers.
//
// Threading: the supervisor itself is a single poll loop, same shape as
// SocketServer -- run() blocks until request_stop() (callable from any
// thread or a signal handler). The test accessors read atomics published
// by the loop, so harnesses can watch pids/respawns/backoff from outside.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <sys/types.h>

#include "cli/router.h"

namespace emmark {

struct SupervisorConfig {
  /// TCP front door (0 = ephemeral; read the result from port()).
  uint16_t port = 0;
  std::string bind_addr = "127.0.0.1";
  /// Unflushed requests per client connection before reads pause (same
  /// backpressure rule as ServerConfig::max_inflight_per_conn).
  size_t max_inflight_per_conn = 64;
  int poll_interval_ms = 20;

  /// Binary to exec for workers. Empty = /proc/self/exe (the normal
  /// case: workers are `emmark_cli shard-worker`). Tests point it at the
  /// built emmark_cli explicitly.
  std::string worker_cmd;
  /// Directory for the per-worker Unix sockets. Empty = a fresh
  /// directory under the system temp dir, removed on shutdown.
  std::string socket_dir;

  /// Respawn backoff: first respawn after `respawn_backoff_ms`, doubling
  /// per consecutive failure up to `respawn_backoff_max_ms`. A worker
  /// that stays up longer than `healthy_after_ms` resets the streak.
  int respawn_backoff_ms = 200;
  int respawn_backoff_max_ms = 5000;
  int healthy_after_ms = 2000;
  /// A spawned worker must accept the handshake within this window or it
  /// is killed and counted as a failure.
  int handshake_timeout_ms = 30000;
  /// Graceful-shutdown budget: drain clients, SIGTERM workers, then
  /// SIGKILL whatever remains.
  int shutdown_grace_ms = 10000;

  /// Backend config forwarded to every worker (each runs it with
  /// shards=1). `router.shards` is the worker count and sizes the ring,
  /// exactly as in-process sharding does.
  RouterConfig router;
};

class Supervisor {
 public:
  /// Binds the front door and spawns the first generation of workers;
  /// throws std::runtime_error on bind failure. Handshakes complete
  /// inside run().
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  uint16_t port() const;

  /// Serves until request_stop(); returns 0 on a clean shutdown.
  int run();

  /// Async-signal-safe stop request.
  void request_stop();

  // -- observability / test accessors (safe from any thread) --
  size_t workers() const;
  pid_t worker_pid(size_t shard) const;      // -1 while down
  bool worker_ready(size_t shard) const;     // handshake done, serving
  uint64_t worker_respawns(size_t shard) const;  // spawns beyond the first
  int worker_backoff_ms(size_t shard) const;     // current delay, 0 if up

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace emmark
