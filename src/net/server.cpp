#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "net/conn.h"

namespace emmark {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

SocketServer::SocketServer(RequestRouter& router, ServerConfig config)
    : router_(router), config_(std::move(config)) {
  obs::MetricsRegistry& registry = router_.metrics_registry();
  poll_cycle_hist_ = &registry.histogram(
      "emmark_server_poll_cycle_seconds",
      "Busy time per server poll cycle (event + pump passes, excluding the "
      "poll wait).");
  connections_gauge_ = &registry.gauge("emmark_server_connections",
                                       "Connections currently open.");
  accepted_counter_ = &registry.counter(
      "emmark_server_connections_accepted_total",
      "Connections accepted since start.");

  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + config_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));
    addr.sun_family = AF_UNIX;
    ::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a crashed run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(listen_fd_, SOMAXCONN) < 0) {
      const std::string why = strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind/listen on " + config_.unix_path + ": " + why);
    }
    set_nonblocking(listen_fd_);
    return;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address: " + config_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, SOMAXCONN) < 0) {
    const std::string why = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + config_.bind_addr + ":" +
                             std::to_string(config_.port) + ": " + why);
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

void SocketServer::accept_new_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (no more pending) or transient accept error
    }
    set_nonblocking(fd);
    if (config_.unix_path.empty()) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    conns_.push_back(std::make_unique<Conn>(fd, router_.open_session(),
                                            config_.max_inflight_per_conn,
                                            config_.line_tap));
    accepted_counter_->inc();
    connection_count_.store(conns_.size(), std::memory_order_relaxed);
  }
}

int SocketServer::run() {
  std::vector<struct pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = 0;
      if (conn->wants_read()) events |= POLLIN;
      if (conn->wants_write()) events |= POLLOUT;
      fds.push_back({conn->fd(), events, 0});
    }

    // Connections polled this cycle; accept() below appends new ones that
    // have no fds entry yet (they get their first poll next cycle).
    const size_t polled = fds.size() - 1;

    const int rc = ::poll(fds.data(), fds.size(), config_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;
    const auto busy_start = std::chrono::steady_clock::now();

    if (fds[0].revents & POLLIN) accept_new_connections();

    // Event pass over the polled connections, then a pump pass for
    // everyone: async completions must reach idle connections too, and a
    // flush may unblock buffered lines.
    std::vector<Conn*> dead;
    for (size_t i = 0; i < polled; ++i) {
      Conn* conn = conns_[i].get();
      const short revents = fds[i + 1].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) && !conn->on_readable()) {
        dead.push_back(conn);
      } else if ((revents & POLLOUT) && !conn->on_writable()) {
        dead.push_back(conn);
      }
    }
    for (auto& conn : conns_) {
      if (std::find(dead.begin(), dead.end(), conn.get()) != dead.end()) continue;
      conn->pump();
      if (conn->wants_write() && !conn->on_writable()) dead.push_back(conn.get());
    }

    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [&](const std::unique_ptr<Conn>& c) {
                                  return c->done() ||
                                         std::find(dead.begin(), dead.end(),
                                                   c.get()) != dead.end();
                                }),
                 conns_.end());
    connection_count_.store(conns_.size(), std::memory_order_relaxed);
    connections_gauge_->set(static_cast<int64_t>(conns_.size()));
    router_.sweep_stores();
    poll_cycle_hist_->record_duration(std::chrono::steady_clock::now() -
                                      busy_start);
  }

  // Graceful shutdown: no new connections, then settle every live session
  // -- in-flight requests complete, their responses flush, sockets close.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& conn : conns_) {
    // One final drain of already-received input before settling. A false
    // return means the peer is gone (reset / EOF mid-request): skip the
    // settle entirely -- finishing would park the shutdown on engine
    // futures and then write to a dead socket.
    if (!conn->on_readable()) continue;
    conn->finish();
    conn->flush_blocking();
  }
  conns_.clear();
  connection_count_.store(0, std::memory_order_relaxed);
  router_.drain();
  return 0;
}

}  // namespace emmark
