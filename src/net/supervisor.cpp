#include "net/supervisor.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "model_zoo/zoo.h"
#include "net/http.h"
#include "obs/merge.h"

namespace emmark {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Every supervisor fd is close-on-exec so spawned workers do not inherit
// the front door, sibling links, or client sockets.
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string error_json(const std::string& id, const std::string& cmd,
                       const std::string& error) {
  return "{\"id\":\"" + json_escape(id) + "\",\"cmd\":\"" + json_escape(cmd) +
         "\",\"ok\":false,\"error\":\"" + json_escape(error) + "\"}";
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream split(line);
  std::string token;
  while (split >> token) tokens.push_back(token);
  return tokens;
}

/// key=value parse with the router's strictness (router.cpp parse_params):
/// throws std::invalid_argument on a token without '=' or with an empty
/// key. The supervisor re-parses only for routing and HTTP validation;
/// canonical error bytes still come from a worker.
std::map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens) {
  std::map<std::string, std::string> kv;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got: " + tokens[i]);
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

std::string kv_get(const std::map<std::string, std::string>& kv,
                   const std::string& key, const std::string& def) {
  const auto it = kv.find(key);
  return it == kv.end() ? def : it->second;
}

/// First u64 after `"key":` in a shallow JSON line; 0 if absent. The
/// stats/quit merges only need the router's own fixed-shape output, so a
/// real JSON parser would be dead weight here.
uint64_t find_u64(const std::string& s, const std::string& quoted_key) {
  const size_t at = s.find("\"" + quoted_key + "\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(s.c_str() + at + quoted_key.size() + 3, nullptr, 10);
}

std::string find_string(const std::string& s, const std::string& quoted_key) {
  const std::string needle = "\"" + quoted_key + "\":\"";
  const size_t at = s.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  std::string out;
  for (size_t i = start; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1];
      ++i;
      continue;
    }
    if (s[i] == '"') break;
    out += s[i];
  }
  return out;
}

constexpr size_t kMaxLineBytes = 1 << 20;  // same rule as net/conn.cpp
const char* const kHandshakeId = "__sup_handshake__";

bool is_engine_verb(const std::string& cmd) {
  return cmd == "insert" || cmd == "extract" || cmd == "verify" ||
         cmd == "trace";
}

}  // namespace

// ---------------------------------------------------------------------------

struct Supervisor::Impl {
  // One queued response for one client request, filled either locally
  // (HTTP 400/404, fast-fail retryable errors) or by worker completions.
  // Responses flush strictly in request order per client.
  struct Slot {
    bool ready = false;
    std::string text;  // one response line / merged exposition, no '\n'
    std::string id, cmd;
    size_t shard = 0;
    bool is_quit = false;
    // HTTP framing (unused in line mode). http_status 0 = derive from
    // the response text (503 on shed/retryable, else 200).
    bool http = false;
    int http_status = 0;
    std::string content_type = "application/json";
    bool http_close = false;
    // Fan-out bookkeeping (stats/metrics/quit).
    size_t awaiting = 0;
    std::vector<std::string> parts;  // indexed by source (worker, or +1)
    uint64_t served = 0;
  };

  struct ClientConn {
    int fd = -1;
    std::string in, out;
    enum class Mode { kUnknown, kLine, kHttp } mode = Mode::kUnknown;
    bool input_eof = false;
    bool dead = false;
    bool quitting = false;          // saw quit; later input is ignored
    bool close_after_flush = false;
    std::deque<std::shared_ptr<Slot>> slots;
    HttpParser http;
  };

  // One Unix-socket connection to a worker: either the per-worker
  // control link (client == nullptr; carries the handshake) or a lazily
  // opened per-(client, worker) proxy link. Responses on a link are
  // matched to expectations strictly FIFO -- the worker session
  // guarantees request-order responses, so no request ids are needed on
  // the wire.
  struct PendingRead {
    bool until_eof = false;  // multi-line response ending with "# EOF"
    std::function<void(std::vector<std::string>&&, bool ok)> done;
  };

  struct Link {
    int fd = -1;
    size_t worker = 0;
    ClientConn* client = nullptr;  // nullptr: control link
    std::string in, out;
    std::deque<PendingRead> reads;
    std::vector<std::string> multi;  // accumulating until_eof lines
    bool closing = false;            // close once reads drain (post-quit)
    bool dead = false;
  };

  struct WorkerProc {
    size_t index = 0;
    uint64_t generation = 0;
    std::string socket_path;
    pid_t pid = -1;
    enum class State { kDown, kConnecting, kHandshaking, kReady, kBackoff };
    State state = State::kDown;
    int failures = 0;       // consecutive spawn/serve failures
    bool ever_resolved = false;  // first spawn reached ready-or-failed
    Clock::time_point spawned_at{};
    Clock::time_point next_spawn{};
    Clock::time_point handshake_deadline{};
    // Published for the cross-thread accessors.
    std::atomic<pid_t> pub_pid{-1};
    std::atomic<bool> pub_ready{false};
    std::atomic<uint64_t> pub_respawns{0};
    std::atomic<int> pub_backoff_ms{0};
  };

  SupervisorConfig cfg;
  ShardRouter ring;
  obs::MetricsRegistry registry;
  std::vector<obs::Gauge*> up_gauges;
  std::vector<obs::Counter*> respawn_counters;
  std::vector<obs::Counter*> retryable_counters;
  obs::Counter* accepted_counter = nullptr;
  obs::Gauge* connections_gauge = nullptr;

  int listen_fd = -1;
  uint16_t port = 0;
  std::atomic<bool> stop{false};
  std::string socket_dir;
  bool own_socket_dir = false;

  std::vector<std::unique_ptr<WorkerProc>> workers;
  std::vector<std::unique_ptr<ClientConn>> clients;
  std::vector<std::unique_ptr<Link>> links;

  explicit Impl(SupervisorConfig config)
      : cfg(std::move(config)),
        ring(cfg.router.shards == 0 ? 1 : cfg.router.shards) {
    if (cfg.router.shards == 0) cfg.router.shards = 1;

    for (size_t i = 0; i < cfg.router.shards; ++i) {
      const std::string shard = std::to_string(i);
      up_gauges.push_back(&registry.gauge(
          "emmark_supervisor_worker_up",
          "1 while the shard's worker process is serving.", {{"shard", shard}}));
      respawn_counters.push_back(&registry.counter(
          "emmark_supervisor_respawns_total",
          "Worker respawns (spawns beyond each shard's first).",
          {{"shard", shard}}));
      retryable_counters.push_back(&registry.counter(
          "emmark_supervisor_retryable_errors_total",
          "Requests failed with a retryable error because the shard's "
          "worker was down.",
          {{"shard", shard}}));
    }
    accepted_counter =
        &registry.counter("emmark_supervisor_connections_accepted_total",
                          "Front-door connections accepted since start.");
    connections_gauge = &registry.gauge("emmark_supervisor_connections",
                                        "Front-door connections open.");

    if (cfg.socket_dir.empty()) {
      socket_dir = (std::filesystem::temp_directory_path() /
                    ("emmark-sup-" + std::to_string(::getpid())))
                       .string();
      own_socket_dir = true;
    } else {
      socket_dir = cfg.socket_dir;
    }
    std::filesystem::create_directories(socket_dir);

    bind_front_door();

    workers.reserve(cfg.router.shards);
    for (size_t i = 0; i < cfg.router.shards; ++i) {
      workers.push_back(std::make_unique<WorkerProc>());
      workers.back()->index = i;
      spawn(*workers.back());
    }
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    for (auto& c : clients) {
      if (c->fd >= 0) ::close(c->fd);
    }
    for (auto& l : links) {
      if (l->fd >= 0) ::close(l->fd);
    }
    for (auto& w : workers) {
      if (w->pid > 0) {
        ::kill(w->pid, SIGKILL);
        ::waitpid(w->pid, nullptr, 0);
      }
      if (!w->socket_path.empty()) ::unlink(w->socket_path.c_str());
    }
    if (own_socket_dir) {
      std::error_code ec;
      std::filesystem::remove_all(socket_dir, ec);
    }
  }

  void bind_front_door() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      throw std::runtime_error("socket(): " + std::string(strerror(errno)));
    }
    set_cloexec(listen_fd);
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.bind_addr.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad bind address: " + cfg.bind_addr);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(listen_fd, SOMAXCONN) < 0) {
      throw std::runtime_error("bind/listen on " + cfg.bind_addr + ":" +
                               std::to_string(cfg.port) + ": " +
                               std::string(strerror(errno)));
    }
    set_nonblocking(listen_fd);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port = ntohs(bound.sin_port);
    }
  }

  // ---- worker lifecycle ----------------------------------------------------

  std::string worker_binary() const {
    return cfg.worker_cmd.empty() ? "/proc/self/exe" : cfg.worker_cmd;
  }

  void spawn(WorkerProc& w) {
    ++w.generation;
    if (!w.socket_path.empty()) ::unlink(w.socket_path.c_str());
    w.socket_path = socket_dir + "/w" + std::to_string(w.index) + ".g" +
                    std::to_string(w.generation) + ".sock";

    std::vector<std::string> argv = {
        worker_binary(), "shard-worker",
        "--socket", w.socket_path,
        "--shard", std::to_string(w.index),
        "--max-inflight", std::to_string(cfg.max_inflight_per_conn),
        "--cache", cfg.router.cache_dir,
        "--capacity", std::to_string(cfg.router.store_capacity),
        "--max-bytes", std::to_string(cfg.router.max_resident_bytes),
        "--train-cap", std::to_string(cfg.router.train_steps_cap),
        "--workers", std::to_string(cfg.router.max_workers),
        "--engine-queue", std::to_string(cfg.router.engine_queue),
        "--base-seed", std::to_string(cfg.router.base_seed),
        "--min-wer", std::to_string(cfg.router.min_wer_pct),
        "--max-queued", std::to_string(cfg.router.max_queued),
        "--store-ttl", std::to_string(cfg.router.store_ttl_sec),
    };
    if (cfg.router.echo) argv.push_back("--echo");

    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "[supervisor] fork for shard %zu failed: %s\n",
                   w.index, strerror(errno));
      worker_failed(w);
      return;
    }
    if (pid == 0) {
      // Child. Die with the supervisor (covers a SIGKILLed parent that
      // never runs its teardown), then become the worker. Environment is
      // inherited on purpose: EMMARK_TEST_CRASH_ON set by the test
      // harness must reach the worker.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      std::vector<char*> cargv;
      cargv.reserve(argv.size() + 1);
      for (auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
      cargv.push_back(nullptr);
      ::execv(cargv[0], cargv.data());
      std::fprintf(stderr, "[shard-worker %zu] execv %s: %s\n", w.index,
                   cargv[0], strerror(errno));
      ::_exit(127);
    }

    if (w.generation > 1) {
      w.pub_respawns.fetch_add(1, std::memory_order_relaxed);
      respawn_counters[w.index]->inc();
    }
    w.pid = pid;
    w.pub_pid.store(pid, std::memory_order_relaxed);
    w.spawned_at = Clock::now();
    w.handshake_deadline =
        w.spawned_at + std::chrono::milliseconds(cfg.handshake_timeout_ms);
    w.state = WorkerProc::State::kConnecting;
  }

  Link* open_link(size_t worker_index, ClientConn* client) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string& path = workers[worker_index]->socket_path;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return nullptr;
    }
    ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // Blocking connect: for a listening Unix socket this completes as
    // soon as the kernel queues it in the backlog -- it does not wait for
    // the worker to accept(), so it cannot stall the loop.
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return nullptr;
    }
    set_nonblocking(fd);
    set_cloexec(fd);
    auto link = std::make_unique<Link>();
    link->fd = fd;
    link->worker = worker_index;
    link->client = client;
    links.push_back(std::move(link));
    return links.back().get();
  }

  void try_handshake(WorkerProc& w) {
    Link* link = open_link(w.index, nullptr);
    if (link == nullptr) return;  // socket not up yet; retry next cycle
    link->out += std::string("stats id=") + kHandshakeId + "\n";
    const uint64_t gen = w.generation;
    link->reads.push_back(PendingRead{
        false, [this, &w, gen](std::vector<std::string>&& lines, bool ok) {
          if (w.generation != gen) return;  // stale generation
          if (ok && !lines.empty() &&
              lines[0].find("\"ok\":true") != std::string::npos) {
            w.state = WorkerProc::State::kReady;
            w.ever_resolved = true;
            w.pub_ready.store(true, std::memory_order_relaxed);
            w.pub_backoff_ms.store(0, std::memory_order_relaxed);
            up_gauges[w.index]->set(1);
          }
          // On !ok the death path has already scheduled the respawn.
        }});
    w.state = WorkerProc::State::kHandshaking;
  }

  /// Consecutive-failure backoff, capped. Shift guarded against overflow.
  int backoff_ms_for(int failures) const {
    int64_t ms = cfg.respawn_backoff_ms;
    for (int i = 1; i < failures && ms < cfg.respawn_backoff_max_ms; ++i) {
      ms *= 2;
    }
    return static_cast<int>(
        std::min<int64_t>(ms, cfg.respawn_backoff_max_ms));
  }

  void schedule_respawn(WorkerProc& w, bool was_healthy) {
    w.failures = was_healthy ? 1 : w.failures + 1;
    w.ever_resolved = true;
    const int delay = backoff_ms_for(w.failures);
    w.next_spawn = Clock::now() + std::chrono::milliseconds(delay);
    w.state = WorkerProc::State::kBackoff;
    w.pub_backoff_ms.store(delay, std::memory_order_relaxed);
  }

  /// The worker's process is gone (reaped) or being discarded: fail all
  /// in-flight requests on it with retryable errors and arm the backoff.
  void worker_down(WorkerProc& w) {
    const bool was_healthy =
        w.state == WorkerProc::State::kReady &&
        Clock::now() - w.spawned_at >=
            std::chrono::milliseconds(cfg.healthy_after_ms);
    w.pid = -1;
    w.pub_pid.store(-1, std::memory_order_relaxed);
    w.pub_ready.store(false, std::memory_order_relaxed);
    up_gauges[w.index]->set(0);
    fail_links_for_worker(w.index);
    if (!w.socket_path.empty()) ::unlink(w.socket_path.c_str());
    schedule_respawn(w, was_healthy);
  }

  /// Spawn-side failure (fork error, handshake timeout): kill whatever
  /// half-started and treat as a down worker.
  void worker_failed(WorkerProc& w) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);  // prompt: SIGKILL cannot be blocked
    }
    worker_down(w);
  }

  void fail_links_for_worker(size_t index) {
    for (auto& link : links) {
      if (link->worker != index || link->dead) continue;
      link->dead = true;
      auto reads = std::move(link->reads);
      link->reads.clear();
      for (auto& pr : reads) pr.done({}, false);
    }
  }

  void reap_workers() {
    for (auto& wp : workers) {
      WorkerProc& w = *wp;
      if (w.pid <= 0) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        std::fprintf(stderr,
                     "[supervisor] shard %zu worker pid %d exited (%s %d); "
                     "respawning\n",
                     w.index, static_cast<int>(w.pid),
                     WIFSIGNALED(status) ? "signal" : "status",
                     WIFSIGNALED(status) ? WTERMSIG(status)
                                         : WEXITSTATUS(status));
        worker_down(w);
      }
    }
  }

  void advance_worker_states(bool allow_spawn) {
    const auto now = Clock::now();
    for (auto& wp : workers) {
      WorkerProc& w = *wp;
      switch (w.state) {
        case WorkerProc::State::kDown:
          if (allow_spawn) spawn(w);
          break;
        case WorkerProc::State::kBackoff:
          if (allow_spawn && now >= w.next_spawn) spawn(w);
          break;
        case WorkerProc::State::kConnecting:
          if (now > w.handshake_deadline) {
            std::fprintf(stderr,
                         "[supervisor] shard %zu worker never came up; "
                         "killing\n",
                         w.index);
            worker_failed(w);
          } else {
            try_handshake(w);
          }
          break;
        case WorkerProc::State::kHandshaking:
          if (now > w.handshake_deadline) {
            std::fprintf(stderr,
                         "[supervisor] shard %zu handshake timed out; "
                         "killing\n",
                         w.index);
            worker_failed(w);
          }
          break;
        case WorkerProc::State::kReady:
          break;
      }
    }
  }

  bool accepting() const {
    // Hold the front door until every worker's first spawn has resolved
    // (ready, or failed into backoff): a client connecting during the
    // startup race would see spurious retryable errors.
    for (const auto& w : workers) {
      if (!w->ever_resolved) return false;
    }
    return true;
  }

  // ---- routing -------------------------------------------------------------

  std::string retryable_error(const std::string& id, const std::string& cmd,
                              size_t shard) {
    retryable_counters[shard]->inc();
    return "{\"id\":\"" + json_escape(id) + "\",\"cmd\":\"" +
           json_escape(cmd) + "\",\"ok\":false,\"error\":\"shard " +
           std::to_string(shard) +
           " worker unavailable (respawning); retry later\","
           "\"retryable\":true}";
  }

  /// Home shard for a request line, replicating the session's spec
  /// resolution (router.cpp spec_for). Anything unparseable routes to
  /// shard 0, whose worker then produces the canonical error bytes.
  size_t route_shard(const std::vector<std::string>& tokens) {
    if (tokens.empty() || !is_engine_verb(tokens[0])) return 0;
    try {
      const auto kv = parse_kv(tokens);
      ModelSpec spec;
      spec.model = kv_get(kv, "model", "opt-125m-sim");
      spec.method = parse_quant_spec(kv_get(kv, "quant", "int4"),
                                     zoo_entry(spec.model).family);
      spec.train_steps_cap = cfg.router.train_steps_cap;
      return ring.shard_for(spec.key());
    } catch (const std::exception&) {
      return 0;
    }
  }

  Link* link_for(ClientConn& c, size_t worker_index) {
    for (auto& link : links) {
      if (!link->dead && !link->closing && link->client == &c &&
          link->worker == worker_index) {
        return link.get();
      }
    }
    return open_link(worker_index, &c);
  }

  std::string own_exposition() {
    obs::Exposition out;
    registry.expose(out);
    return out.text();
  }

  void finalize_metrics(const std::shared_ptr<Slot>& slot) {
    slot->text = obs::merge_expositions(slot->parts) + "# EOF";
    slot->http_status = slot->http ? 200 : 0;
    slot->ready = true;
  }

  void finalize_stats(const std::shared_ptr<Slot>& slot) {
    // Reassemble the single-process `stats` shape (router.cpp) from the
    // per-worker single-shard snapshots: top-level store/engine sums, and
    // the shards array concatenated with each worker's lone shard entry
    // renumbered to its ring index.
    uint64_t hits = 0, misses = 0, builds = 0, evictions = 0, resident = 0,
             resident_bytes = 0, capacity = 0;
    uint64_t submitted = 0, completed = 0, failed = 0, pending = 0;
    std::string id;
    std::string shards_json;
    size_t present = 0;
    for (size_t i = 0; i < slot->parts.size(); ++i) {
      const std::string& part = slot->parts[i];
      if (part.empty()) continue;
      ++present;
      if (id.empty()) id = find_string(part, "id");
      capacity += find_u64(part, "capacity");
      submitted += find_u64(part, "submitted");
      completed += find_u64(part, "completed");
      failed += find_u64(part, "failed");
      const size_t arr = part.find("\"shards\":[");
      if (arr == std::string::npos) continue;
      // part ends ...,"shards":[{...}]}
      std::string inner = part.substr(arr + 10);
      if (inner.size() >= 2 && inner.compare(inner.size() - 2, 2, "]}") == 0) {
        inner.resize(inner.size() - 2);
      }
      hits += find_u64(inner, "hits");
      misses += find_u64(inner, "misses");
      builds += find_u64(inner, "builds");
      evictions += find_u64(inner, "evictions");
      resident += find_u64(inner, "resident");
      resident_bytes += find_u64(inner, "resident_bytes");
      pending += find_u64(inner, "pending");
      const std::string tag = "\"shard\":0";
      const size_t at = inner.find(tag);
      if (at != std::string::npos) {
        inner = inner.substr(0, at) + "\"shard\":" + std::to_string(i) +
                inner.substr(at + tag.size());
      }
      if (!shards_json.empty()) shards_json += ",";
      shards_json += inner;
    }
    if (present == 0) {
      slot->text = error_json(slot->id, "stats",
                              "no shard workers available; retry later");
      slot->text.insert(slot->text.size() - 1, ",\"retryable\":true");
      slot->ready = true;
      return;
    }
    slot->text =
        "{\"id\":\"" + json_escape(id) + "\",\"cmd\":\"stats\",\"ok\":true," +
        "\"store\":{\"hits\":" + std::to_string(hits) +
        ",\"misses\":" + std::to_string(misses) +
        ",\"builds\":" + std::to_string(builds) +
        ",\"evictions\":" + std::to_string(evictions) +
        ",\"resident\":" + std::to_string(resident) +
        ",\"resident_bytes\":" + std::to_string(resident_bytes) +
        ",\"capacity\":" + std::to_string(capacity) + "}," +
        "\"engine\":{\"submitted\":" + std::to_string(submitted) +
        ",\"completed\":" + std::to_string(completed) +
        ",\"failed\":" + std::to_string(failed) +
        ",\"pending\":" + std::to_string(pending) + "}," +
        "\"shards\":[" + shards_json + "]}";
    slot->ready = true;
  }

  void route_line(ClientConn& c, const std::string& line) {
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') return;  // no response
    const std::string& cmd = tokens[0];

    auto slot = std::make_shared<Slot>();
    slot->cmd = cmd;
    for (const auto& t : tokens) {
      if (t.rfind("id=", 0) == 0) slot->id = t.substr(3);
    }
    c.slots.push_back(slot);

    if (cmd == "quit") {
      c.quitting = true;
      slot->is_quit = true;
      for (auto& link : links) {
        if (link->dead || link->closing || link->client != &c) continue;
        link->out += "quit\n";
        link->closing = true;  // close once the quit response arrives
        ++slot->awaiting;
        link->reads.push_back(PendingRead{
            false, [slot](std::vector<std::string>&& lines, bool ok) {
              if (ok && !lines.empty()) {
                slot->served += find_u64(lines[0], "served");
              }
              if (--slot->awaiting == 0) {
                slot->text = "{\"cmd\":\"quit\",\"ok\":true,\"served\":" +
                             std::to_string(slot->served) + "}";
                slot->ready = true;
              }
            }});
      }
      if (slot->awaiting == 0) {
        slot->text = "{\"cmd\":\"quit\",\"ok\":true,\"served\":0}";
        slot->ready = true;
      }
      return;
    }

    if (cmd == "metrics") {
      start_metrics(c, slot);
      return;
    }

    if (cmd == "stats") {
      start_stats(c, slot, line);
      return;
    }

    // Engine verbs, unknown commands, malformed lines: one owning worker
    // (shard 0 for anything unroutable) produces the canonical response.
    const size_t shard = route_shard(tokens);
    slot->shard = shard;
    forward_to_worker(c, slot, shard, line);
  }

  void forward_to_worker(ClientConn& c, const std::shared_ptr<Slot>& slot,
                         size_t shard, const std::string& line) {
    WorkerProc& w = *workers[shard];
    Link* link = (w.state == WorkerProc::State::kReady)
                     ? link_for(c, shard)
                     : nullptr;
    if (link == nullptr) {
      slot->text = retryable_error(slot->id, slot->cmd, shard);
      slot->ready = true;
      return;
    }
    link->out += line;
    link->out += '\n';
    link->reads.push_back(PendingRead{
        false, [this, slot, shard](std::vector<std::string>&& lines, bool ok) {
          slot->text = ok && !lines.empty()
                           ? lines[0]
                           : retryable_error(slot->id, slot->cmd, shard);
          slot->ready = true;
        }});
  }

  void start_metrics(ClientConn& c, const std::shared_ptr<Slot>& slot) {
    // parts[0] = the supervisor's own series; parts[1+i] = worker i.
    slot->parts.assign(workers.size() + 1, "");
    slot->parts[0] = own_exposition();
    for (size_t i = 0; i < workers.size(); ++i) {
      if (workers[i]->state != WorkerProc::State::kReady) continue;
      Link* link = link_for(c, i);
      if (link == nullptr) continue;
      link->out += "metrics\n";
      ++slot->awaiting;
      link->reads.push_back(PendingRead{
          true, [this, slot, i](std::vector<std::string>&& lines, bool ok) {
            if (ok) {
              std::string part;
              for (const auto& l : lines) {
                part += l;
                part += '\n';
              }
              slot->parts[1 + i] = std::move(part);
            }
            if (--slot->awaiting == 0) finalize_metrics(slot);
          }});
    }
    if (slot->awaiting == 0) finalize_metrics(slot);
  }

  void start_stats(ClientConn& c, const std::shared_ptr<Slot>& slot,
                   const std::string& line) {
    slot->parts.assign(workers.size(), "");
    for (size_t i = 0; i < workers.size(); ++i) {
      if (workers[i]->state != WorkerProc::State::kReady) continue;
      Link* link = link_for(c, i);
      if (link == nullptr) continue;
      link->out += line;
      link->out += '\n';
      ++slot->awaiting;
      link->reads.push_back(PendingRead{
          false, [this, slot, i](std::vector<std::string>&& lines, bool ok) {
            if (ok && !lines.empty()) slot->parts[i] = std::move(lines[0]);
            if (--slot->awaiting == 0) finalize_stats(slot);
          }});
    }
    if (slot->awaiting == 0) finalize_stats(slot);
  }

  // ---- HTTP ----------------------------------------------------------------

  void local_http_slot(ClientConn& c, int status, const std::string& body,
                       bool close_conn) {
    auto slot = std::make_shared<Slot>();
    slot->http = true;
    slot->http_status = status;
    slot->text = body;
    slot->http_close = close_conn;
    slot->ready = true;
    c.slots.push_back(slot);
  }

  /// docs/PROTOCOL.md §8: required-parameter table, enforced before
  /// forwarding so a missing parameter maps to 400 (the worker would
  /// report it as a runtime ok:false line, which must stay 200).
  static const char* missing_required(const std::string& verb,
                                      const std::map<std::string, std::string>& kv) {
    auto need = [&kv](const char* key) -> const char* {
      return kv.count(key) ? nullptr : key;
    };
    if (verb == "extract") {
      if (const char* k = need("codes")) return k;
      if (const char* k = need("record")) return k;
    } else if (verb == "verify") {
      if (const char* k = need("codes")) return k;
      if (const char* k = need("evidence")) return k;
    } else if (verb == "trace") {
      if (const char* k = need("codes")) return k;
      if (const char* k = need("set")) return k;
    }
    return nullptr;
  }

  void handle_http_request(ClientConn& c, const HttpRequest& req) {
    if (req.method == "GET" && req.target == "/metrics") {
      auto slot = std::make_shared<Slot>();
      slot->http = true;
      slot->cmd = "metrics";
      slot->content_type = "text/plain; version=0.0.4; charset=utf-8";
      slot->http_close = req.close;
      c.slots.push_back(slot);
      start_metrics(c, slot);
      return;
    }

    if (req.method == "POST" && req.target.rfind("/v1/", 0) == 0) {
      const std::string verb = req.target.substr(4);
      if (!is_engine_verb(verb) && verb != "stats") {
        local_http_slot(c, 404,
                        error_json("", verb, "unknown verb: " + verb +
                                                 " (known: insert extract "
                                                 "verify trace stats)"),
                        req.close);
        return;
      }
      if (req.body.find('\n') != std::string::npos ||
          req.body.find('\r') != std::string::npos) {
        local_http_slot(c, 400,
                        error_json("", verb, "body must be a single line of "
                                             "key=value parameters"),
                        req.close);
        return;
      }
      std::string line = verb;
      if (!req.body.empty()) line += " " + req.body;
      const auto tokens = tokenize(line);
      std::string id;
      for (const auto& t : tokens) {
        if (t.rfind("id=", 0) == 0) id = t.substr(3);
      }
      // Parse errors map to 400 here instead of being forwarded: HTTP
      // callers get status-code semantics, line callers get the worker's
      // canonical error line.
      try {
        const auto kv = parse_kv(tokens);
        if (is_engine_verb(verb)) {
          ModelSpec spec;
          spec.model = kv_get(kv, "model", "opt-125m-sim");
          spec.method = parse_quant_spec(kv_get(kv, "quant", "int4"),
                                         zoo_entry(spec.model).family);
          if (const char* key = missing_required(verb, kv)) {
            local_http_slot(
                c, 400,
                error_json(id, verb, "missing parameter: " + std::string(key)),
                req.close);
            return;
          }
        }
      } catch (const std::exception& e) {
        local_http_slot(c, 400, error_json(id, verb, e.what()), req.close);
        return;
      }

      auto slot = std::make_shared<Slot>();
      slot->http = true;
      slot->http_close = req.close;
      slot->cmd = verb;
      slot->id = id;
      c.slots.push_back(slot);
      if (verb == "stats") {
        start_stats(c, slot, line);
      } else {
        const size_t shard = route_shard(tokens);
        slot->shard = shard;
        forward_to_worker(c, slot, shard, line);
      }
      return;
    }

    local_http_slot(
        c, 404,
        error_json("", "", "not found: " + req.method + " " + req.target),
        req.close);
  }

  // ---- client IO -----------------------------------------------------------

  void process_client_input(ClientConn& c) {
    if (c.mode == ClientConn::Mode::kUnknown) {
      switch (sniff_transport(c.in)) {
        case TransportSniff::kUndecided:
          if (c.input_eof) c.mode = ClientConn::Mode::kLine;  // short EOF
          else return;
          break;
        case TransportSniff::kHttp:
          c.mode = ClientConn::Mode::kHttp;
          break;
        case TransportSniff::kLine:
          c.mode = ClientConn::Mode::kLine;
          break;
      }
    }

    if (c.mode == ClientConn::Mode::kLine) {
      while (!c.quitting && c.slots.size() < cfg.max_inflight_per_conn) {
        const size_t nl = c.in.find('\n');
        std::string line;
        if (nl == std::string::npos) {
          if (!c.input_eof || c.in.empty()) break;
          line = std::move(c.in);  // unterminated trailing line at EOF
          c.in.clear();
        } else {
          line = c.in.substr(0, nl);
          c.in.erase(0, nl + 1);
        }
        if (!line.empty() && line.back() == '\r') line.pop_back();
        route_line(c, line);
      }
      if (c.quitting) c.in.clear();
      return;
    }

    while (!c.close_after_flush && c.slots.size() < cfg.max_inflight_per_conn) {
      HttpRequest req;
      std::string error;
      const auto status = c.http.parse(c.in, req, &error);
      if (status == HttpParser::Status::kNeedMore) break;
      if (status == HttpParser::Status::kError) {
        local_http_slot(c, 400, error_json("", "", error), /*close=*/true);
        c.input_eof = true;  // stop reading a stream we cannot frame
        break;
      }
      handle_http_request(c, req);
    }
  }

  bool read_client(ClientConn& c) {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.in.append(chunk, static_cast<size_t>(n));
        if (c.mode != ClientConn::Mode::kHttp &&
            c.in.size() > kMaxLineBytes &&
            c.in.find('\n') == std::string::npos) {
          return false;  // oversized line: drop, as net/conn.cpp does
        }
        if (c.slots.size() >= cfg.max_inflight_per_conn) break;
        continue;
      }
      if (n == 0) {
        c.input_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    process_client_input(c);
    return true;
  }

  bool flush_client(ClientConn& c) {
    while (!c.out.empty()) {
      const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c.out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void pump_client(ClientConn& c) {
    while (!c.slots.empty() && c.slots.front()->ready) {
      const auto slot = c.slots.front();
      c.slots.pop_front();
      if (c.mode == ClientConn::Mode::kHttp) {
        int status = slot->http_status;
        if (status == 0) {
          const bool unavailable =
              slot->text.find("\"shed\":true") != std::string::npos ||
              slot->text.find("\"retryable\":true") != std::string::npos;
          status = unavailable ? 503 : 200;
        }
        c.out += http_response(status, slot->content_type, slot->text + "\n",
                               /*keep_alive=*/!slot->http_close);
        if (slot->http_close) c.close_after_flush = true;
      } else {
        c.out += slot->text;
        c.out += '\n';
        if (slot->is_quit) c.close_after_flush = true;
      }
    }
    // A flush may have freed in-flight slots for buffered input.
    if (!c.in.empty() || c.input_eof) process_client_input(c);
  }

  void drop_client(ClientConn* c) {
    for (auto& link : links) {
      if (link->client == c && !link->dead) {
        link->dead = true;
        link->reads.clear();  // responses for a vanished client: discard
      }
    }
    if (c->fd >= 0) ::close(c->fd);
  }

  bool client_finished(const ClientConn& c) {
    if (c.close_after_flush && c.out.empty()) return true;
    return c.input_eof && c.in.empty() && c.slots.empty() && c.out.empty();
  }

  // ---- link IO -------------------------------------------------------------

  void link_consume(Link& link) {
    while (!link.reads.empty()) {
      const size_t nl = link.in.find('\n');
      if (nl == std::string::npos) return;
      std::string line = link.in.substr(0, nl);
      link.in.erase(0, nl + 1);
      PendingRead& pr = link.reads.front();
      if (pr.until_eof) {
        link.multi.push_back(std::move(line));
        if (link.multi.back() != "# EOF") continue;
        auto done = std::move(pr.done);
        auto lines = std::move(link.multi);
        link.multi.clear();
        link.reads.pop_front();
        done(std::move(lines), true);
      } else {
        auto done = std::move(pr.done);
        link.reads.pop_front();
        done({std::move(line)}, true);
      }
    }
  }

  bool read_link(Link& link) {
    char chunk[8192];
    for (;;) {
      const ssize_t n = ::recv(link.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        link.in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        // A worker never half-closes a live conversation: EOF here means
        // the process died (reaped next cycle) or finished its quit.
        link_consume(link);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    link_consume(link);
    return true;
  }

  bool flush_link(Link& link) {
    while (!link.out.empty()) {
      const ssize_t n =
          ::send(link.fd, link.out.data(), link.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        link.out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void fail_link(Link& link) {
    if (link.dead) return;
    link.dead = true;
    auto reads = std::move(link.reads);
    link.reads.clear();
    for (auto& pr : reads) pr.done({}, false);
  }

  // ---- main loop -----------------------------------------------------------

  void accept_clients() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;
      }
      set_nonblocking(fd);
      set_cloexec(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto client = std::make_unique<ClientConn>();
      client->fd = fd;
      clients.push_back(std::move(client));
      accepted_counter->inc();
    }
    connections_gauge->set(static_cast<int64_t>(clients.size()));
  }

  void one_cycle(bool allow_accept, bool allow_spawn) {
    reap_workers();
    advance_worker_states(allow_spawn);

    struct Ref {
      enum class Kind { kListen, kClient, kLink } kind;
      void* ptr;
    };
    std::vector<struct pollfd> fds;
    std::vector<Ref> refs;
    if (allow_accept && accepting()) {
      fds.push_back({listen_fd, POLLIN, 0});
      refs.push_back({Ref::Kind::kListen, nullptr});
    }
    for (auto& c : clients) {
      short events = 0;
      if (!c->input_eof && !c->quitting &&
          c->slots.size() < cfg.max_inflight_per_conn) {
        events |= POLLIN;
      }
      if (!c->out.empty()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
      refs.push_back({Ref::Kind::kClient, c.get()});
    }
    for (auto& l : links) {
      if (l->dead) continue;
      short events = POLLIN;
      if (!l->out.empty()) events |= POLLOUT;
      fds.push_back({l->fd, events, 0});
      refs.push_back({Ref::Kind::kLink, l.get()});
    }

    const int rc =
        ::poll(fds.data(), fds.size(), cfg.poll_interval_ms);
    if (rc < 0 && errno != EINTR) return;

    for (size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      switch (refs[i].kind) {
        case Ref::Kind::kListen:
          if (revents & POLLIN) accept_clients();
          break;
        case Ref::Kind::kClient: {
          auto* c = static_cast<ClientConn*>(refs[i].ptr);
          if ((revents & (POLLIN | POLLHUP | POLLERR)) && !read_client(*c)) {
            c->dead = true;
          } else if ((revents & POLLOUT) && !flush_client(*c)) {
            c->dead = true;
          }
          break;
        }
        case Ref::Kind::kLink: {
          auto* l = static_cast<Link*>(refs[i].ptr);
          if ((revents & (POLLIN | POLLHUP | POLLERR)) && !read_link(*l)) {
            fail_link(*l);
          } else if ((revents & POLLOUT) && !flush_link(*l)) {
            fail_link(*l);
          }
          break;
        }
      }
    }

    // Opportunistic link writes (freshly enqueued requests should not
    // wait a poll interval), then drain finished links.
    for (auto& l : links) {
      if (!l->dead && !l->out.empty() && !flush_link(*l)) fail_link(*l);
    }
    links.erase(std::remove_if(links.begin(), links.end(),
                               [](const std::unique_ptr<Link>& l) {
                                 if (l->dead ||
                                     (l->closing && l->reads.empty())) {
                                   if (l->fd >= 0) ::close(l->fd);
                                   return true;
                                 }
                                 return false;
                               }),
                links.end());

    // Flush ready responses and sweep finished/dead clients.
    for (auto& c : clients) {
      if (c->dead) continue;
      pump_client(*c);
      if (!c->out.empty() && !flush_client(*c)) c->dead = true;
    }
    clients.erase(
        std::remove_if(clients.begin(), clients.end(),
                       [this](const std::unique_ptr<ClientConn>& c) {
                         if (c->dead || client_finished(*c)) {
                           drop_client(c.get());
                           return true;
                         }
                         return false;
                       }),
        clients.end());
    connections_gauge->set(static_cast<int64_t>(clients.size()));

    // Requests enqueued by the pump pass (links opened or written above)
    // go on the wire now instead of waiting out a poll interval.
    for (auto& l : links) {
      if (!l->dead && !l->out.empty() && !flush_link(*l)) fail_link(*l);
    }
  }

  int run() {
    while (!stop.load(std::memory_order_relaxed)) {
      one_cycle(/*allow_accept=*/true, /*allow_spawn=*/true);
    }

    // Graceful shutdown: close the door, drain live clients within the
    // grace budget (no respawns -- a worker dying now just fails its
    // remaining requests retryable), then terminate workers.
    ::close(listen_fd);
    listen_fd = -1;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(cfg.shutdown_grace_ms);
    auto draining = [this] {
      for (const auto& c : clients) {
        if (!c->slots.empty() || !c->out.empty()) return true;
      }
      return false;
    };
    while (draining() && Clock::now() < deadline) {
      one_cycle(/*allow_accept=*/false, /*allow_spawn=*/false);
    }
    for (auto& c : clients) drop_client(c.get());
    clients.clear();

    for (auto& w : workers) {
      if (w->pid > 0) ::kill(w->pid, SIGTERM);
    }
    const auto kill_deadline = Clock::now() + std::chrono::seconds(5);
    for (auto& w : workers) {
      while (w->pid > 0) {
        if (::waitpid(w->pid, nullptr, WNOHANG) == w->pid) {
          w->pid = -1;
          w->pub_pid.store(-1, std::memory_order_relaxed);
          break;
        }
        if (Clock::now() >= kill_deadline) {
          ::kill(w->pid, SIGKILL);
          ::waitpid(w->pid, nullptr, 0);
          w->pid = -1;
          w->pub_pid.store(-1, std::memory_order_relaxed);
          break;
        }
        struct timespec ts = {0, 10 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
      }
      w->pub_ready.store(false, std::memory_order_relaxed);
      if (!w->socket_path.empty()) ::unlink(w->socket_path.c_str());
    }
    for (auto& l : links) {
      if (l->fd >= 0) ::close(l->fd);
    }
    links.clear();
    if (own_socket_dir) {
      std::error_code ec;
      std::filesystem::remove_all(socket_dir, ec);
    }
    return 0;
  }
};

// ---------------------------------------------------------------------------

Supervisor::Supervisor(SupervisorConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Supervisor::~Supervisor() = default;

uint16_t Supervisor::port() const { return impl_->port; }

int Supervisor::run() { return impl_->run(); }

void Supervisor::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
}

size_t Supervisor::workers() const { return impl_->workers.size(); }

pid_t Supervisor::worker_pid(size_t shard) const {
  return impl_->workers[shard]->pub_pid.load(std::memory_order_relaxed);
}

bool Supervisor::worker_ready(size_t shard) const {
  return impl_->workers[shard]->pub_ready.load(std::memory_order_relaxed);
}

uint64_t Supervisor::worker_respawns(size_t shard) const {
  return impl_->workers[shard]->pub_respawns.load(std::memory_order_relaxed);
}

int Supervisor::worker_backoff_ms(size_t shard) const {
  return impl_->workers[shard]->pub_backoff_ms.load(std::memory_order_relaxed);
}

}  // namespace emmark
