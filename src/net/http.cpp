#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace emmark {

namespace {

const char* const kMethods[] = {"GET",    "POST",  "HEAD", "PUT",
                                "DELETE", "OPTIONS", "PATCH"};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

TransportSniff sniff_transport(const std::string& buf) {
  if (buf.empty()) return TransportSniff::kUndecided;
  bool prefix_of_method = false;
  for (const char* m : kMethods) {
    const std::string with_space = std::string(m) + ' ';
    const size_t n = std::min(buf.size(), with_space.size());
    if (buf.compare(0, n, with_space, 0, n) == 0) {
      if (buf.size() >= with_space.size()) return TransportSniff::kHttp;
      prefix_of_method = true;
    }
  }
  // Protocol verbs are lowercase, so a line-mode client can never look
  // like a method prefix; no complete line needed to decide.
  return prefix_of_method ? TransportSniff::kUndecided : TransportSniff::kLine;
}

HttpParser::Status HttpParser::parse(std::string& buf, HttpRequest& out,
                                     std::string* error) {
  const size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      if (error) *error = "header block too large";
      return Status::kError;
    }
    return Status::kNeedMore;
  }
  if (head_end > kMaxHeaderBytes) {
    if (error) *error = "header block too large";
    return Status::kError;
  }

  out = HttpRequest{};
  const std::string head = buf.substr(0, head_end);
  size_t line_start = 0;
  size_t line_no = 0;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    if (line_no++ == 0) {
      const size_t sp1 = line.find(' ');
      const size_t sp2 = (sp1 == std::string::npos) ? std::string::npos
                                                    : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        if (error) *error = "malformed request line";
        return Status::kError;
      }
      out.method = line.substr(0, sp1);
      out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      out.version = line.substr(sp2 + 1);
      if (out.version.rfind("HTTP/1.", 0) != 0) {
        if (error) *error = "unsupported HTTP version: " + out.version;
        return Status::kError;
      }
      continue;
    }
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      if (error) *error = "malformed header: " + line;
      return Status::kError;
    }
    out.headers[lower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
  }

  size_t body_len = 0;
  if (auto it = out.headers.find("content-length"); it != out.headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      if (error) *error = "bad Content-Length: " + it->second;
      return Status::kError;
    }
    body_len = static_cast<size_t>(v);
    if (body_len > kMaxBodyBytes) {
      if (error) *error = "body too large";
      return Status::kError;
    }
  } else if (out.headers.count("transfer-encoding")) {
    if (error) *error = "chunked transfer encoding not supported";
    return Status::kError;
  }

  const size_t total = head_end + 4 + body_len;
  if (buf.size() < total) return Status::kNeedMore;
  out.body = buf.substr(head_end + 4, body_len);
  buf.erase(0, total);

  const std::string conn = lower([&] {
    auto it = out.headers.find("connection");
    return it == out.headers.end() ? std::string() : it->second;
  }());
  if (out.version == "HTTP/1.0") {
    out.close = (conn != "keep-alive");
  } else {
    out.close = (conn == "close");
  }
  return Status::kRequest;
}

const char* http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_status_text(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace emmark
