// Conn: one client connection's state machine for the socket server.
//
// Owns the non-blocking fd, the partial-line read buffer, the outgoing
// write buffer, and the connection's RequestRouter::Session. The server's
// poll loop drives it through three entry points:
//
//   * on_readable(): drains the socket into the read buffer and feeds
//     complete lines to the session -- but only while the session's
//     in-flight count stays under the configured bound. Lines beyond the
//     bound stay buffered and wants_read() goes false, so a client that
//     pipelines faster than the engine completes is throttled by TCP
//     backpressure instead of growing an unbounded queue.
//   * on_writable(): flushes the write buffer to the socket.
//   * pump(): flushes session responses that became ready since the last
//     event (async engine completions), then resumes feeding buffered
//     lines freed up by the flush.
//
// Responses append to the write buffer in session order, so per-connection
// ordering (docs/PROTOCOL.md) holds end to end.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "cli/router.h"

namespace emmark {

class Conn {
 public:
  /// Takes ownership of `fd` (closed on destruction). `max_inflight`
  /// bounds the session's unflushed requests before reads pause.
  /// `line_tap`, if set, sees every complete line before the session does
  /// (fault-injection hook; see ServerConfig::line_tap).
  Conn(int fd, std::unique_ptr<RequestRouter::Session> session,
       size_t max_inflight,
       std::function<void(const std::string&)> line_tap = {});
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }

  /// Poll interest: reads pause at EOF/quit and while at the in-flight
  /// bound; writes only while output is queued.
  bool wants_read() const;
  bool wants_write() const { return !out_buf_.empty(); }

  /// Drains readable bytes and feeds complete lines (within the in-flight
  /// bound). Returns false when the connection is dead (peer reset).
  bool on_readable();

  /// Flushes queued output. Returns false when the connection is dead.
  bool on_writable();

  /// Flushes ready session responses into the write buffer and feeds any
  /// buffered lines the flush unblocked.
  void pump();

  /// Blocking finish: serves any backlog throttled at the in-flight bound
  /// (alternating settle/feed passes), then settles every pending response
  /// (and the quit line if quit was seen) into the write buffer. Used at
  /// input EOF / quit and during graceful server shutdown.
  void finish();

  /// True once the conversation is over and fully flushed: input finished
  /// (EOF or quit), the session settled, and the write buffer empty.
  bool done() const;

  /// Best-effort blocking flush of the remaining write buffer (graceful
  /// shutdown path; poll()s for writability with a bounded wait).
  void flush_blocking();

 private:
  /// Non-blocking recv into the read buffer (respecting the in-flight
  /// pause and the max-line cap). Returns false when the connection must
  /// be dropped.
  bool drain_socket();
  void feed_buffered_lines();

  int fd_;
  std::unique_ptr<RequestRouter::Session> session_;
  size_t max_inflight_;
  std::function<void(const std::string&)> line_tap_;
  std::string in_buf_;
  std::string out_buf_;
  bool input_eof_ = false;   // peer closed its write side
  bool finished_ = false;    // session settled (finish() ran)
  RequestRouter::LineSink sink_;
};

}  // namespace emmark
