// Minimal HTTP/1.1 support for the supervisor front door.
//
// The supervisor serves both transports on one port: the first bytes of a
// connection decide whether it speaks the newline-delimited protocol or
// HTTP (sniff_transport). HTTP requests map onto protocol verbs
// (docs/PROTOCOL.md §8): `GET /metrics` is the `metrics` verb's
// Prometheus exposition, `POST /v1/<verb>` carries one request line's
// parameters as the body. This is deliberately not a general HTTP stack:
// Content-Length framing only (no chunked encoding, no trailers), no
// TLS, loopback-oriented.
#pragma once

#include <map>
#include <string>

namespace emmark {

struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // e.g. "/metrics"
  std::string version;  // e.g. "HTTP/1.1"
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
  /// True when the connection must close after the response
  /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
  bool close = false;
};

/// First-bytes transport sniff for the shared front door.
enum class TransportSniff {
  kUndecided,  // buffer is a proper prefix of an HTTP method token
  kHttp,       // starts with a known HTTP method + space
  kLine,       // anything else: the newline-delimited protocol
};
TransportSniff sniff_transport(const std::string& buf);

/// Incremental HTTP/1.1 request parser over a growing buffer.
class HttpParser {
 public:
  enum class Status {
    kNeedMore,  // incomplete; call again after more bytes arrive
    kRequest,   // one full request consumed from `buf` into `out`
    kError,     // malformed or over limits; `error` says why, close conn
  };

  /// Attempts to parse one request from the front of `buf`. On kRequest
  /// the parsed bytes are erased from `buf` (pipelined requests keep
  /// working) and parser state resets for the next request.
  Status parse(std::string& buf, HttpRequest& out, std::string* error);

  /// Limits: a header block or a body beyond these is a protocol error
  /// (mirrors the line transport's 1 MiB max-line rule).
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 1 << 20;
};

/// Renders a full response with Content-Length framing.
std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive);

const char* http_status_text(int status);

}  // namespace emmark
