// SocketServer: the TCP front-end over the RequestRouter serving core.
//
// `emmark_cli serve` binds a listening socket and runs a single-threaded
// poll/accept loop. Every accepted connection gets its own
// RequestRouter::Session (per-connection ordering, artifact dependencies,
// counters) speaking the same newline-delimited JSON protocol as the stdio
// daemon (docs/PROTOCOL.md) -- same RequestRouter code path, so responses
// are byte-identical between transports. Heavy work -- request bodies,
// cold model builds, artifact file I/O, suspect deep copies -- runs on the
// shard engines' pool workers via the router's lazy verb pipelines; the
// loop thread only parses, dispatches, and shuttles bytes, and each poll
// cycle retries deferred engine submissions (build not ready yet, or
// engine queue full) without ever parking (docs/ARCHITECTURE.md,
// "Threading"). A cold build on one connection therefore never delays
// warm traffic on another.
//
// Lifecycle: the constructor binds and listens (port() is valid
// immediately; port 0 picks an ephemeral port). run() blocks until
// request_stop() -- callable from any thread or a signal handler -- then
// shuts down gracefully: stop accepting, settle every live session
// (in-flight requests complete and their responses flush), close. `quit`
// on a connection ends only that connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cli/router.h"

namespace emmark {

class Conn;

struct ServerConfig {
  /// Port to bind (0 = ephemeral; read the result from port()).
  uint16_t port = 0;
  /// Bind address. Loopback by default: the daemon protocol is
  /// unauthenticated, so exposing it wider is an explicit operator choice.
  std::string bind_addr = "127.0.0.1";
  /// Non-empty: listen on this Unix-domain socket path instead of TCP
  /// (port/bind_addr are ignored, port() reports 0). Used by the
  /// process-shard workers, which only ever talk to their supervisor on
  /// the same host. A stale file at the path is unlinked before bind; the
  /// path is unlinked again on destruction.
  std::string unix_path;
  /// Unflushed requests per connection before the server stops reading
  /// from that socket (TCP backpressure instead of an unbounded queue).
  size_t max_inflight_per_conn = 64;
  /// Poll timeout: the latency floor for flushing async completions to
  /// idle connections.
  int poll_interval_ms = 20;
  /// Optional tap invoked with every complete request line before it is
  /// handed to the session. Test hook: the shard worker uses it for
  /// EMMARK_TEST_CRASH_ON fault injection (die deterministically when a
  /// chosen request arrives). Must not block.
  std::function<void(const std::string&)> line_tap;
};

class SocketServer {
 public:
  /// Binds and listens immediately; throws std::runtime_error on failure
  /// (port in use, bad address). `router` must outlive the server.
  SocketServer(RequestRouter& router, ServerConfig config = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound port (resolves port 0 to the actual ephemeral port).
  uint16_t port() const { return port_; }

  /// Serves until request_stop(); returns 0 on a clean shutdown.
  int run();

  /// Async-signal-safe stop request: run() finishes the current poll
  /// cycle, settles every connection, and returns.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Connections currently open (for tests/observability).
  size_t connections() const { return connection_count_.load(std::memory_order_relaxed); }

 private:
  void accept_new_connections();

  RequestRouter& router_;
  ServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> connection_count_{0};
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Server-side series in the router's registry, scraped via `metrics`:
  /// busy time per poll cycle (time spent outside ::poll, i.e. the event
  /// and pump passes -- a growing tail here means the loop thread is doing
  /// work that belongs on the engines), open/accepted connection counts.
  obs::Histogram* poll_cycle_hist_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
};

}  // namespace emmark
