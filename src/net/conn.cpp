#include "net/conn.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace emmark {

namespace {
/// Hard cap on a single request line: past this without a newline the
/// peer is not speaking the protocol and the connection is dropped.
constexpr size_t kMaxLineBytes = 1 << 20;
}  // namespace

Conn::Conn(int fd, std::unique_ptr<RequestRouter::Session> session,
           size_t max_inflight,
           std::function<void(const std::string&)> line_tap)
    : fd_(fd),
      session_(std::move(session)),
      max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      line_tap_(std::move(line_tap)) {
  sink_ = [this](const std::string& line) {
    out_buf_ += line;
    out_buf_ += '\n';
  };
}

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

bool Conn::wants_read() const {
  return !input_eof_ && !session_->quit_seen() &&
         session_->inflight() < max_inflight_;
}

void Conn::feed_buffered_lines() {
  while (!input_eof_ || !in_buf_.empty()) {
    if (session_->quit_seen()) {
      in_buf_.clear();  // anything after quit is not part of the protocol
      break;
    }
    if (session_->inflight() >= max_inflight_) break;
    const size_t nl = in_buf_.find('\n');
    if (nl == std::string::npos) {
      // No complete line buffered. At EOF a trailing unterminated line is
      // still fed (matching std::getline in the stdio daemon).
      if (input_eof_ && !in_buf_.empty()) {
        std::string line = std::move(in_buf_);
        in_buf_.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line_tap_) line_tap_(line);
        session_->handle_line(line, sink_);
        continue;
      }
      break;
    }
    std::string line = in_buf_.substr(0, nl);
    in_buf_.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_tap_) line_tap_(line);
    session_->handle_line(line, sink_);
  }
  // Input is over (EOF or quit), every buffered line was consumed, and
  // nothing is pending: end the session. Waiting for inflight() to reach
  // zero (via pump cycles) instead of settling here keeps the blocking
  // flush off the event loop -- one connection's quit must not starve the
  // others while its last requests drain.
  if (!finished_ && in_buf_.empty() && (input_eof_ || session_->quit_seen()) &&
      session_->inflight() == 0) {
    session_->finish(sink_);  // instant: nothing left to wait for
    finished_ = true;
  }
}

bool Conn::drain_socket() {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_buf_.append(chunk, static_cast<size_t>(n));
      // A newline-free stream must not grow the buffer without bound:
      // the in-flight throttle only bites on complete lines, so a peer
      // that never sends one would otherwise bypass all backpressure.
      if (in_buf_.size() > kMaxLineBytes &&
          in_buf_.find('\n') == std::string::npos) {
        return false;  // protocol abuse; drop the connection
      }
      // Stop slurping once the session is saturated; the unread remainder
      // stays in the kernel buffer and throttles the peer.
      if (session_->inflight() >= max_inflight_) break;
      continue;
    }
    if (n == 0) {
      input_eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // connection reset / hard error
  }
  return true;
}

bool Conn::on_readable() {
  if (!drain_socket()) return false;
  feed_buffered_lines();
  return true;
}

bool Conn::on_writable() {
  while (!out_buf_.empty()) {
    const ssize_t n = ::send(fd_, out_buf_.data(), out_buf_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      out_buf_.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Conn::pump() {
  session_->poll(sink_);
  feed_buffered_lines();
}

void Conn::finish() {
  if (finished_) return;
  // Serve the backlog that was throttled at the in-flight bound before
  // ending the session: re-drain the socket (bytes may still sit in the
  // kernel buffer from a paused read), blocking-settle to free in-flight
  // slots, feed the next lines, repeat until no complete line remains.
  // Without this, a graceful shutdown would silently drop requests the
  // client had already pipelined past the bound.
  // (feed_buffered_lines can settle the session itself once the input is
  // over -- the finished_ checks keep finish() from running twice.)
  while (!finished_ && !session_->quit_seen()) {
    if (!input_eof_) (void)drain_socket();  // best-effort; errors just stop intake
    if (in_buf_.find('\n') == std::string::npos) break;
    session_->settle(sink_);
    feed_buffered_lines();
  }
  if (!finished_) {
    session_->finish(sink_);
    finished_ = true;
  }
}

bool Conn::done() const {
  return finished_ && out_buf_.empty();
}

void Conn::flush_blocking() {
  while (!out_buf_.empty()) {
    struct pollfd pfd = {fd_, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/1000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return;  // peer gone or stuck; shutdown must not hang
    if (!on_writable()) return;
  }
}

}  // namespace emmark
