#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <stdexcept>

namespace emmark {

LineClient::LineClient(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect to " + host + ":" + std::to_string(port) +
                             ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

LineClient::LineClient(const std::string& unix_path) {
  sockaddr_un addr{};
  if (unix_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + unix_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));
  addr.sun_family = AF_UNIX;
  ::strncpy(addr.sun_path, unix_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect to " + unix_path + ": " + why);
  }
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

void LineClient::send_line(const std::string& line) {
  std::string wire = line;
  wire += '\n';
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
}

bool LineClient::recv_line(std::string& line) {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 && !buf_.empty()) {  // unterminated trailing data
      line = std::move(buf_);
      buf_.clear();
      return true;
    }
    return false;
  }
}

void LineClient::shutdown_send() { ::shutdown(fd_, SHUT_WR); }

void LineClient::reset() {
  if (fd_ < 0) return;
  struct linger hard = {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd_);
  fd_ = -1;
}

std::vector<std::string> LineClient::recv_until(const std::string& terminator) {
  std::vector<std::string> lines;
  std::string line;
  for (;;) {
    if (!recv_line(line)) {
      throw std::runtime_error("server closed after " +
                               std::to_string(lines.size()) +
                               " lines without \"" + terminator + "\"");
    }
    lines.push_back(line);
    if (line == terminator) return lines;
  }
}

std::vector<std::string> LineClient::roundtrip(
    const std::vector<std::string>& lines, size_t expect) {
  for (const std::string& line : lines) send_line(line);
  std::vector<std::string> responses;
  responses.reserve(expect);
  std::string response;
  while (responses.size() < expect) {
    if (!recv_line(response)) {
      throw std::runtime_error(
          "server closed after " + std::to_string(responses.size()) + " of " +
          std::to_string(expect) + " responses");
    }
    responses.push_back(response);
  }
  return responses;
}

}  // namespace emmark
