// LineClient: a minimal blocking loopback client for the socket server.
//
// Speaks the newline-delimited protocol (docs/PROTOCOL.md) for tests and
// benches: send request lines, read response lines, detect EOF. Not a
// production client -- just enough to drive emmark_cli serve end to end
// from the same process (tests/test_server.cpp, bench_engine_throughput's
// socket phase).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace emmark {

class LineClient {
 public:
  /// Connects (blocking) to host:port; throws std::runtime_error on
  /// failure.
  LineClient(const std::string& host, uint16_t port);
  /// Connects (blocking) to a Unix-domain socket path (the process-shard
  /// workers listen on these); throws std::runtime_error on failure.
  explicit LineClient(const std::string& unix_path);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends one request line (newline appended). Throws on a dead socket.
  void send_line(const std::string& line);

  /// Blocks for the next complete response line. Returns false on EOF
  /// with no buffered data (server closed the connection).
  bool recv_line(std::string& line);

  /// Half-close: signals end of requests (the server sees EOF and settles
  /// the session) while responses can still be read.
  void shutdown_send();

  /// Hard close with SO_LINGER 0: the kernel sends RST instead of FIN, so
  /// the server observes a connection reset rather than an orderly EOF.
  /// For tests that exercise dead-peer handling; the client is unusable
  /// afterwards.
  void reset();

  /// Blocks until a line equal to `terminator` arrives; returns every line
  /// read including the terminator. For multi-line responses framed by a
  /// sentinel line (the `metrics` verb ends with "# EOF"). Throws if the
  /// server closes before the terminator.
  std::vector<std::string> recv_until(const std::string& terminator);

  /// Convenience: send every line, then read exactly `expect` responses.
  /// Throws if the server closes early.
  std::vector<std::string> roundtrip(const std::vector<std::string>& lines,
                                     size_t expect);

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace emmark
