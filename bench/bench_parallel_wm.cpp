// Serial vs. pooled watermark hot paths (derive + extract + in-layer score),
// plus the SIMD kernel-dispatch levels.
//
// Phase 1 times EmMark derive, extract, and score_layer (row-chunked
// within a single layer -- the largest one) over the largest model-zoo
// config at several thread counts via ThreadPool::ScopedOverride. Phase 2
// pins the pool at one thread and sweeps every supported kernel level
// (scalar / sse2 / avx2 / neon) through the same paths, so the SIMD
// speedup is attributed separately from threading. A table prints per
// phase, plus one machine-readable JSON line (the repo's perf trajectory
// -- scripts/bench_baseline.sh, BENCH_5.json -- is tracked from it).
// Invariance of the *results* across thread counts and kernel levels is
// asserted here too -- a speedup that changed placements or scores would
// be worthless.
//
// Usage: bench_parallel_wm [--model <zoo-name>] [--repeats N]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "util/argparse.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace {

using namespace emmark;
using namespace emmark::bench;

/// Largest zoo entry by quantized-parameter proxy.
const ZooEntry& largest_entry() {
  const auto& entries = zoo_entries();
  const ZooEntry* best = &entries.front();
  auto weight_proxy = [](const ZooEntry& e) {
    return e.n_layers * (4 * e.d_model * e.d_model + 3 * e.d_model * e.ffn_hidden);
  };
  for (const ZooEntry& e : entries) {
    if (weight_proxy(e) > weight_proxy(*best)) best = &e;
  }
  return *best;
}

double best_of(int repeats, const std::function<double()>& run_ms) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) best = std::min(best, run_ms());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_parallel_wm",
                 "Serial vs. pooled EmMark derive/extract timings");
  args.add_option("model", largest_entry().name, "zoo model to watermark");
  args.add_option("repeats", "5", "timing repeats per cell (best-of)");
  if (!args.parse(argc, argv)) return 2;
  const std::string model_name = args.get("model");
  const int repeats = std::max(1, static_cast<int>(args.get_int("repeats")));

  const auto& entries = zoo_entries();
  if (std::none_of(entries.begin(), entries.end(),
                   [&](const ZooEntry& e) { return e.name == model_name; })) {
    std::fprintf(stderr, "unknown zoo model: %s\navailable:", model_name.c_str());
    for (const ZooEntry& e : entries) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  print_header("Parallel watermark hot paths",
               "Serial vs. ThreadPool derive+extract, largest zoo config");

  BenchContext ctx;
  const ZooEntry& entry = zoo_entry(model_name);
  auto fp = ctx.zoo().model(model_name);
  auto stats = ctx.zoo().stats(model_name);
  const QuantizedModel original(*fp, *stats,
                                method_for(entry.family, QuantBits::kInt4));
  const WatermarkKey key = owner_key(QuantBits::kInt4);

  const EmMarkScheme emmark;
  QuantizedModel marked = original;
  const SchemeRecord record = emmark.insert(marked, *stats, key);

  // Largest quantization layer: the score_layer timing target.
  int64_t score_layer_index = 0;
  for (int64_t i = 1; i < original.num_layers(); ++i) {
    if (original.layer(i).weights.numel() >
        original.layer(score_layer_index).weights.numel()) {
      score_layer_index = i;
    }
  }
  const QuantizedLayer& score_target = original.layer(score_layer_index);
  const LayerActivationStats& score_act = stats->find(score_target.name);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(),
                static_cast<size_t>(hw)) == thread_counts.end()) {
    thread_counts.push_back(hw);
    std::sort(thread_counts.begin(), thread_counts.end());
  }

  struct Row {
    size_t threads;
    double derive_ms;
    double extract_ms;
    double score_ms;
  };
  struct Cell {
    double derive_ms;
    double extract_ms;
    double score_ms;
  };
  std::vector<Row> rows;
  std::vector<LayerWatermark> reference;
  std::vector<double> score_reference;

  // Times the three hot paths under whatever pool/kernel context the
  // caller set up, and checks the results against the first cell measured:
  // every thread count AND every kernel level must reproduce the same
  // placements, scores, and (perfect) extraction -- a speedup that changed
  // any of them would be worthless. Returns false (after a FATAL line
  // naming `label`) on a mismatch.
  auto run_cell = [&](const std::string& label, Cell& out) -> bool {
    std::vector<LayerWatermark> derived;
    out.derive_ms = best_of(repeats, [&] {
      Timer t;
      derived = emmark.derive(original, *stats, key).as<WatermarkRecord>().layers;
      return t.milliseconds();
    });
    ExtractionReport report;
    out.extract_ms = best_of(repeats, [&] {
      Timer t;
      report = emmark.extract_derived(marked, original, *stats, key);
      return t.milliseconds();
    });
    std::vector<double> scores;
    out.score_ms = best_of(repeats, [&] {
      Timer t;
      scores = score_layer(score_target.weights, score_act.abs_mean,
                           key.alpha, key.beta);
      return t.milliseconds();
    });

    if (reference.empty()) {
      reference = derived;
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        if (derived[i].locations != reference[i].locations ||
            derived[i].bits != reference[i].bits) {
          std::fprintf(stderr, "FATAL: %s changed layer %zu placements\n",
                       label.c_str(), i);
          return false;
        }
      }
    }
    if (report.matched_bits != report.total_bits ||
        report.total_bits != emmark.total_bits(record)) {
      std::fprintf(stderr, "FATAL: extraction mismatch at %s\n", label.c_str());
      return false;
    }
    if (score_reference.empty()) {
      score_reference = scores;
    } else if (scores != score_reference) {
      std::fprintf(stderr, "FATAL: %s changed layer scores\n", label.c_str());
      return false;
    }
    return true;
  };

  for (size_t n : thread_counts) {
    ThreadPool pool(n);
    ThreadPool::ScopedOverride over(pool);
    Cell cell;
    if (!run_cell("thread count " + std::to_string(n), cell)) return 1;
    rows.push_back({n, cell.derive_ms, cell.extract_ms, cell.score_ms});
  }

  const double base_derive = rows.front().derive_ms;
  const double base_extract = rows.front().extract_ms;
  const double base_score = rows.front().score_ms;
  TablePrinter table({"threads", "derive ms", "extract ms", "score ms",
                      "speedup (derive)", "speedup (score)"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.threads), TablePrinter::fmt(row.derive_ms, 2),
                   TablePrinter::fmt(row.extract_ms, 2),
                   TablePrinter::fmt(row.score_ms, 3),
                   TablePrinter::fmt(base_derive / row.derive_ms, 2),
                   TablePrinter::fmt(base_score / row.score_ms, 2)});
  }
  table.print();
  std::printf("(score column: single largest layer, %lld x %lld weights)\n",
              static_cast<long long>(score_target.weights.rows()),
              static_cast<long long>(score_target.weights.cols()));
  std::printf("\n(hardware_concurrency = %u; counts above it oversubscribe)\n", hw);

  // --- kernel dispatch levels, single-threaded --------------------------
  // One pool thread isolates the SIMD contribution from threading; the
  // scalar row is the pre-SIMD reference the ">= 3x" acceptance gate in
  // BENCH_5.json is measured against.
  struct KernelRow {
    kernels::Level level;
    double derive_ms;
    double extract_ms;
    double score_ms;
  };
  std::vector<KernelRow> kernel_rows;
  {
    ThreadPool pool(1);
    ThreadPool::ScopedOverride over(pool);
    // Two timing windows per level, min-merged: these per-level ratios
    // feed bench_baseline.sh --compare's regression gate, and on shared
    // hosts scheduler-noise bursts span whole best-of windows -- a burst
    // inside a single window would skew the stored scalar/SIMD ratio.
    for (int pass = 0; pass < 2; ++pass) {
      size_t idx = 0;
      for (kernels::Level level : kernels::supported_levels()) {
        kernels::ScopedLevelOverride kernel(level);
        Cell cell;
        if (!run_cell(std::string("kernel level ") + kernels::to_string(level),
                      cell)) {
          return 1;
        }
        if (pass == 0) {
          kernel_rows.push_back({level, cell.derive_ms, cell.extract_ms,
                                 cell.score_ms});
        } else {
          KernelRow& row = kernel_rows[idx];
          row.derive_ms = std::min(row.derive_ms, cell.derive_ms);
          row.extract_ms = std::min(row.extract_ms, cell.extract_ms);
          row.score_ms = std::min(row.score_ms, cell.score_ms);
        }
        ++idx;
      }
    }
  }

  const double kernel_base_derive = kernel_rows.front().derive_ms;
  const double kernel_base_score = kernel_rows.front().score_ms;
  TablePrinter kernel_table({"kernel", "derive ms", "extract ms", "score ms",
                             "speedup (derive)", "speedup (score)"});
  for (const KernelRow& row : kernel_rows) {
    kernel_table.add_row({kernels::to_string(row.level),
                          TablePrinter::fmt(row.derive_ms, 2),
                          TablePrinter::fmt(row.extract_ms, 2),
                          TablePrinter::fmt(row.score_ms, 3),
                          TablePrinter::fmt(kernel_base_derive / row.derive_ms, 2),
                          TablePrinter::fmt(kernel_base_score / row.score_ms, 2)});
  }
  std::printf("\n");
  kernel_table.print();
  std::printf("(kernel rows: 1 pool thread, scalar row = pre-SIMD reference; "
              "active default = %s)\n",
              kernels::to_string(kernels::default_level()));

  // Machine-readable summary, one JSON object on its own line.
  std::printf("\nJSON: {\"bench\":\"parallel_wm\",\"model\":\"%s\",\"layers\":%lld,"
              "\"bits_per_layer\":%lld,\"repeats\":%d,\"hardware_threads\":%u,"
              "\"kernel_default\":\"%s\",\"rows\":[",
              model_name.c_str(), static_cast<long long>(original.num_layers()),
              static_cast<long long>(key.bits_per_layer), repeats, hw,
              kernels::to_string(kernels::default_level()));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s{\"threads\":%zu,\"derive_ms\":%.3f,\"extract_ms\":%.3f,"
                "\"score_ms\":%.3f,\"derive_speedup\":%.3f,"
                "\"extract_speedup\":%.3f,\"score_speedup\":%.3f}",
                i ? "," : "", rows[i].threads, rows[i].derive_ms,
                rows[i].extract_ms, rows[i].score_ms,
                base_derive / rows[i].derive_ms,
                base_extract / rows[i].extract_ms,
                base_score / rows[i].score_ms);
  }
  std::printf("],\"kernels\":[");
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    std::printf("%s{\"kernel\":\"%s\",\"derive_ms\":%.3f,\"extract_ms\":%.3f,"
                "\"score_ms\":%.3f,\"derive_speedup\":%.3f,\"score_speedup\":%.3f}",
                i ? "," : "", kernels::to_string(kernel_rows[i].level),
                kernel_rows[i].derive_ms, kernel_rows[i].extract_ms,
                kernel_rows[i].score_ms,
                kernel_base_derive / kernel_rows[i].derive_ms,
                kernel_base_score / kernel_rows[i].score_ms);
  }
  std::printf("]}\n");
  return 0;
}
