// Engine serving throughput: synchronous batch vs. asynchronous submit()
// at several worker counts, plus warm-vs-cold ModelStore latency.
//
// The request body is a full EmMark insert on a small in-memory model (no
// zoo training in the hot loop), so the numbers isolate the service layer:
// queueing, fan-out, and future/callback plumbing. Byte-identical results
// between the sync and async paths are asserted on every run -- a speedup
// that changed a placement would be worthless.
//
// A third phase times the socket serving path end to end: an in-process
// SocketServer (2 shards) on an ephemeral loopback port, driven by the
// LineClient helper with a pipelined insert workload -- so the measured
// cost includes the poll loop, line framing, and per-connection ordering,
// not just the engine.
//
// Prints a table plus one machine-readable JSON line (like
// bench_parallel_wm; the repo's perf trajectory is tracked from these).
//
// Usage: bench_engine_throughput [--requests N] [--repeats N] [--smoke]
//   --smoke: small fixed workload for CI (the Release lane runs this so
//   the daemon AND socket serving paths cannot silently rot).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/router.h"
#include "obs/metrics.h"
#include "data/corpus.h"
#include "eval/report.h"
#include "model_zoo/store.h"
#include "net/client.h"
#include "net/server.h"
#include "quant/calib.h"
#include "quant/qmodel.h"
#include "util/argparse.h"
#include "util/threadpool.h"
#include "util/timer.h"
#include "wm/engine.h"
#include "wm/evidence.h"

namespace {

using namespace emmark;

struct Fixture {
  std::unique_ptr<TransformerLM> fp_model;
  ActivationStats stats;
  std::unique_ptr<QuantizedModel> quantized;
};

/// Tiny untrained model: request cost is dominated by scoring/derivation,
/// which is what the engine schedules.
Fixture make_fixture(uint64_t seed) {
  Fixture fx;
  ModelConfig config;
  config.family = ArchFamily::kOptStyle;
  config.vocab_size = synth_vocab().size();
  config.d_model = 48;
  config.n_layers = 3;
  config.n_heads = 2;
  config.ffn_hidden = 192;
  config.max_seq = 24;
  config.init_seed = seed;
  fx.fp_model = std::make_unique<TransformerLM>(config);

  CorpusConfig cc;
  cc.train_tokens = 6000;
  cc.seed = seed;
  const Corpus corpus = make_corpus(synth_vocab(), cc);

  CalibConfig calib;
  calib.batches = 4;
  calib.seq_len = 16;
  fx.stats = collect_activation_stats(*fx.fp_model, corpus.train, calib);
  fx.quantized = std::make_unique<QuantizedModel>(*fx.fp_model, fx.stats,
                                                  QuantMethod::kAwqInt4);
  return fx;
}

std::vector<WatermarkEngine::InsertRequest> make_requests(
    Fixture& fx, std::vector<QuantizedModel>& models) {
  std::vector<WatermarkEngine::InsertRequest> requests;
  for (size_t i = 0; i < models.size(); ++i) {
    WatermarkEngine::InsertRequest request;
    request.id = "req-" + std::to_string(i);
    request.model = &models[i];
    request.stats = &fx.stats;
    request.key.bits_per_layer = 8;
    request.key.candidate_ratio = 10;
    request.seed_from_id = true;
    requests.push_back(request);
  }
  return requests;
}

double best_of(int repeats, const std::function<double()>& run_ms) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) best = std::min(best, run_ms());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_engine_throughput",
                 "sync vs async WatermarkEngine requests/sec + ModelStore "
                 "warm/cold latency");
  args.add_option("requests", "24", "requests per timed workload");
  args.add_option("repeats", "3", "timing repeats per cell (best-of)");
  args.add_option("model", "opt-125m-sim", "zoo model for the store phase");
  args.add_flag("smoke", "small fixed workload for CI");
  if (!args.parse(argc, argv)) return 2;

  const bool smoke = args.get_flag("smoke");
  const size_t requests_n =
      smoke ? 8 : static_cast<size_t>(std::max<int64_t>(1, args.get_int("requests")));
  const int repeats =
      smoke ? 1 : std::max(1, static_cast<int>(args.get_int("repeats")));

  std::printf("\n================================================================\n");
  std::printf("WatermarkEngine throughput -- sync batch vs async submit\n");
  std::printf("================================================================\n");

  Fixture fx = make_fixture(/*seed=*/33);
  const EngineConfig config{/*base_seed=*/7, /*trace_min_wer_pct=*/90.0};

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> worker_counts = {1, 2};
  if (std::find(worker_counts.begin(), worker_counts.end(),
                static_cast<size_t>(hw)) == worker_counts.end()) {
    worker_counts.push_back(hw);
  }

  // Reference digests from the sync path at the shared pool size; every
  // other cell must reproduce them exactly.
  std::vector<uint64_t> reference;
  {
    std::vector<QuantizedModel> models(requests_n, *fx.quantized);
    const WatermarkEngine engine(config);
    const auto results = engine.insert_batch(make_requests(fx, models));
    for (size_t i = 0; i < models.size(); ++i) {
      if (!results[i].ok) {
        std::fprintf(stderr, "FATAL: request %zu failed: %s\n", i,
                     results[i].error.c_str());
        return 1;
      }
      reference.push_back(digest_model_codes(models[i]));
    }
  }

  struct Row {
    const char* mode;
    size_t workers;
    double ms;
    double rps;
    /// Per-request latency percentiles (async cells only; submit-to-done
    /// through the obs::Histogram, pooled over every repeat). 0 for sync
    /// cells, where one blocking batch has no per-request latency.
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
  };
  std::vector<Row> rows;

  for (size_t workers : worker_counts) {
    ThreadPool pool(workers);
    ThreadPool::ScopedOverride over(pool);

    // Sync: one blocking batch call.
    {
      std::vector<uint64_t> digests;
      const double ms = best_of(repeats, [&] {
        std::vector<QuantizedModel> models(requests_n, *fx.quantized);
        const WatermarkEngine engine(config);
        Timer t;
        const auto results = engine.insert_batch(make_requests(fx, models));
        const double elapsed = t.milliseconds();
        digests.clear();
        for (size_t i = 0; i < models.size(); ++i) {
          digests.push_back(results[i].ok ? digest_model_codes(models[i]) : 0);
        }
        return elapsed;
      });
      if (digests != reference) {
        std::fprintf(stderr, "FATAL: sync results diverged at %zu workers\n",
                     workers);
        return 1;
      }
      rows.push_back({"sync", workers, ms, 1e3 * requests_n / ms});
    }

    // Async: submit everything, then drain. Each request records its
    // submit-to-completion latency into an obs::Histogram (stamped before
    // submit, recorded in the done callback on the worker), so the table
    // can report tail percentiles next to throughput.
    {
      std::vector<uint64_t> digests;
      obs::Histogram latency;
      const double ms = best_of(repeats, [&] {
        std::vector<QuantizedModel> models(requests_n, *fx.quantized);
        WatermarkEngine engine(config);
        auto requests = make_requests(fx, models);
        Timer t;
        std::vector<std::future<WatermarkEngine::InsertResult>> futures;
        futures.reserve(requests.size());
        for (auto& request : requests) {
          const auto submitted_at = std::chrono::steady_clock::now();
          futures.push_back(engine.submit(
              request, [&latency, submitted_at](
                           const WatermarkEngine::InsertResult&) {
                latency.record_duration(std::chrono::steady_clock::now() -
                                        submitted_at);
              }));
        }
        engine.drain();
        const double elapsed = t.milliseconds();
        digests.clear();
        for (size_t i = 0; i < models.size(); ++i) {
          digests.push_back(futures[i].get().ok ? digest_model_codes(models[i]) : 0);
        }
        return elapsed;
      });
      if (digests != reference) {
        std::fprintf(stderr, "FATAL: async results diverged at %zu workers\n",
                     workers);
        return 1;
      }
      const obs::Histogram::Snapshot snap = latency.snapshot();
      rows.push_back({"async", workers, ms, 1e3 * requests_n / ms,
                      1e3 * snap.quantile(0.50), 1e3 * snap.quantile(0.95),
                      1e3 * snap.quantile(0.99)});
    }
  }

  TablePrinter table({"mode", "workers", "ms / workload", "requests/sec",
                      "p50 ms", "p95 ms", "p99 ms"});
  for (const Row& row : rows) {
    const bool has_latency = row.p50_ms > 0;
    table.add_row({row.mode, std::to_string(row.workers),
                   TablePrinter::fmt(row.ms, 2), TablePrinter::fmt(row.rps, 1),
                   has_latency ? TablePrinter::fmt(row.p50_ms, 2) : "-",
                   has_latency ? TablePrinter::fmt(row.p95_ms, 2) : "-",
                   has_latency ? TablePrinter::fmt(row.p99_ms, 2) : "-"});
  }
  table.print();
  std::printf("(%zu insert requests per workload; async == sync byte-for-byte, "
              "asserted)\n",
              requests_n);

  // --- ModelStore warm vs cold ----------------------------------------------
  std::printf("\n-- ModelStore: cold build vs warm handle --\n");
  const std::string cache =
      (std::filesystem::temp_directory_path() / "emmark_bench_store_cache").string();
  std::filesystem::remove_all(cache);  // a true cold start (includes training)
  ModelStoreConfig store_config;
  store_config.cache_dir = cache;
  ModelStore store(store_config);
  ModelSpec spec;
  spec.model = args.get("model");
  spec.train_steps_cap = smoke ? 25 : 60;

  Timer cold_timer;
  (void)store.get(spec);
  const double cold_ms = cold_timer.milliseconds();
  Timer warm_timer;
  (void)store.get(spec);
  const double warm_ms = warm_timer.milliseconds();
  Timer checkout_timer;
  (void)store.checkout(spec);
  const double checkout_ms = checkout_timer.milliseconds();
  std::filesystem::remove_all(cache);

  TablePrinter store_table({"store op", "ms"});
  store_table.add_row({"cold get (train+quantize)", TablePrinter::fmt(cold_ms, 1)});
  store_table.add_row({"warm get (cache hit)", TablePrinter::fmt(warm_ms, 3)});
  store_table.add_row({"checkout (hit + deep copy)", TablePrinter::fmt(checkout_ms, 3)});
  store_table.print();
  const ModelStore::Stats stats = store.stats();
  std::printf("store counters: hits=%llu misses=%llu builds=%llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.builds));

  // --- socket serving path --------------------------------------------------
  std::printf("\n-- socket path: emmark_cli serve loopback round-trip --\n");
  const size_t serve_requests = smoke ? 6 : requests_n;
  double serve_warm_ms = 0;
  double serve_ms = 0;
  {
    const std::string serve_cache =
        (std::filesystem::temp_directory_path() / "emmark_bench_serve_cache").string();
    std::filesystem::remove_all(serve_cache);
    RouterConfig rc;
    rc.cache_dir = serve_cache;
    rc.train_steps_cap = 25;
    rc.shards = 2;
    RequestRouter router(rc);
    SocketServer server(router, {});
    std::thread loop([&] { server.run(); });

    // Any exit path must stop and join the loop thread first: unwinding
    // past a joinable std::thread calls std::terminate, which would turn
    // a reportable failure into a bare abort in CI.
    bool serve_failed = false;
    try {
      LineClient client("127.0.0.1", server.port());
      {
        // Warm request: pays the one model build of the session.
        Timer t;
        (void)client.roundtrip({"insert id=warm model=opt-125m-sim quant=int4"}, 1);
        serve_warm_ms = t.milliseconds();
      }
      std::vector<std::string> script;
      for (size_t i = 0; i < serve_requests; ++i) {
        script.push_back("insert id=req-" + std::to_string(i) +
                         " model=opt-125m-sim quant=int4 seed-from-id=1");
      }
      Timer t;
      const auto responses = client.roundtrip(script, script.size());
      serve_ms = t.milliseconds();
      for (const std::string& line : responses) {
        if (line.find("\"ok\":true") == std::string::npos) {
          std::fprintf(stderr, "FATAL: socket request failed: %s\n", line.c_str());
          serve_failed = true;
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FATAL: socket phase: %s\n", e.what());
      serve_failed = true;
    }
    server.request_stop();
    loop.join();
    std::filesystem::remove_all(serve_cache);
    if (serve_failed) return 1;
  }
  TablePrinter serve_table({"socket op", "ms"});
  serve_table.add_row({"first request (cold build)", TablePrinter::fmt(serve_warm_ms, 1)});
  serve_table.add_row({std::to_string(serve_requests) + " pipelined inserts (warm)",
                       TablePrinter::fmt(serve_ms, 2)});
  serve_table.print();
  std::printf("socket warm throughput: %.1f requests/sec\n",
              1e3 * serve_requests / serve_ms);

  // Machine-readable summary, one JSON object on its own line.
  std::printf("\nJSON: {\"bench\":\"engine_throughput\",\"requests\":%zu,"
              "\"repeats\":%d,\"smoke\":%s,\"hardware_threads\":%u,\"rows\":[",
              requests_n, repeats, smoke ? "true" : "false", hw);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s{\"mode\":\"%s\",\"workers\":%zu,\"ms\":%.3f,\"rps\":%.1f",
                i ? "," : "", rows[i].mode, rows[i].workers, rows[i].ms,
                rows[i].rps);
    if (rows[i].p50_ms > 0) {
      std::printf(",\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f",
                  rows[i].p50_ms, rows[i].p95_ms, rows[i].p99_ms);
    }
    std::printf("}");
  }
  std::printf("],\"store\":{\"model\":\"%s\",\"cold_ms\":%.1f,\"warm_ms\":%.3f,"
              "\"checkout_ms\":%.3f},\"serve\":{\"requests\":%zu,"
              "\"cold_ms\":%.1f,\"ms\":%.2f,\"rps\":%.1f}}\n",
              spec.model.c_str(), cold_ms, warm_ms, checkout_ms, serve_requests,
              serve_warm_ms, serve_ms, 1e3 * serve_requests / serve_ms);
  return 0;
}
