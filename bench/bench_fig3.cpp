// Figure 3: watermark capacity. Signature length per layer sweeps 50..200
// (paper x-axis) on opt-2.7b-sim AWQ INT4; PPL and accuracy are plotted,
// and every watermark must still extract at 100%.
//
// Paper threshold: quality holds to ~100 bits/layer, then degrades. Our
// layers are ~100x smaller, so the same absolute lengths stress capacity
// harder -- the knee appears at the same order of inserted-bits fraction.
#include <cstdio>

#include "bench_common.h"
#include "util/mathx.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Figure 3",
               "Capacity sweep: PPL / accuracy / WER vs signature bits per "
               "layer (opt-2.7b-sim, AWQ INT4)");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);

  const double base_ppl = ctx.ppl_of(original);
  const double base_acc = ctx.acc_of(original);
  std::printf("non-watermarked baseline: PPL %.2f, acc %.2f%%\n\n", base_ppl,
              base_acc);

  TablePrinter table(
      {"bits/layer", "PPL", "ZeroShotAcc%", "WER%", "log10 P_c per layer"});
  for (int64_t bits : {0, 50, 100, 150, 200}) {
    if (bits == 0) {
      table.add_row({"0", TablePrinter::fmt(base_ppl), TablePrinter::fmt(base_acc),
                     "-", "-"});
      continue;
    }
    WatermarkKey key = owner_key(QuantBits::kInt4);
    key.bits_per_layer = bits;
    key.candidate_ratio = 3;
    QuantizedModel wm = original;
    const EmMarkScheme scheme;
    scheme.insert(wm, *stats, key);
    const double ppl = ctx.ppl_of(wm);
    const double acc = ctx.acc_of(wm);
    const double wer =
        scheme.extract_derived(wm, original, *stats, key).wer_pct();
    table.add_row({std::to_string(bits), TablePrinter::fmt(ppl),
                   TablePrinter::fmt(acc), TablePrinter::fmt(wer),
                   TablePrinter::fmt(log10_binomial_tail_half(bits, bits), 1)});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): all lengths extract at 100%%; quality holds "
      "up to a knee, then PPL rises / accuracy falls as capacity is "
      "exceeded.\n");
  return 0;
}
