// Figure 2(b): re-watermarking attack. The adversary runs EmMark-style
// insertion with their own hyper-parameters (alpha=1, beta=1.5, seed=22 --
// the paper's setting) and activations taken from the *quantized* model,
// inserting 100..300 bits per layer. Series: PPL, accuracy, owner WER.
#include <cstdio>

#include "attack/rewatermark.h"
#include "bench_common.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Figure 2(b)",
               "Re-watermarking attack: PPL / accuracy / owner WER vs "
               "adversary bits per layer (opt-2.7b-sim, AWQ INT4)");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);

  const WatermarkKey key = owner_key(QuantBits::kInt4);
  const EmMarkScheme scheme;
  QuantizedModel watermarked = original;
  const SchemeRecord record = scheme.insert(watermarked, *stats, key);

  // Adversary's activation statistics come from the deployed quantized
  // model -- the full-precision model is confidential.
  auto deployed_fp = watermarked.materialize();
  CalibConfig calib;
  calib.batches = 8;
  calib.seq_len = 32;
  const ActivationStats adversary_stats = collect_activation_stats(
      *deployed_fp, ctx.zoo().env().corpus.train, calib);

  TablePrinter table(
      {"adversary bits/layer", "PPL", "ZeroShotAcc%", "WER%", "log10 P_c"});
  for (int64_t bits : {0, 100, 150, 200, 250, 300}) {
    QuantizedModel attacked = watermarked;
    if (bits > 0) {
      RewatermarkConfig attack;  // alpha=1, beta=1.5, seed=22
      attack.bits_per_layer = bits;
      attack.candidate_ratio = 4;
      rewatermark_attack(attacked, adversary_stats, attack);
    }
    const double ppl = ctx.ppl_of(attacked);
    const double acc = ctx.acc_of(attacked);
    const ExtractionReport report = scheme.extract(attacked, original, record);
    table.add_row({std::to_string(bits), TablePrinter::fmt(ppl),
                   TablePrinter::fmt(acc), TablePrinter::fmt(report.wer_pct()),
                   TablePrinter::fmt(report.strength_log10(), 1)});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): accuracy collapses by 300 bits/layer while "
      "owner WER stays >95%%. Scale note: our quantized model's activations "
      "are near-identical to the FP ones (tiny models quantize almost "
      "losslessly), so the adversary's scoring overlaps the owner's more "
      "than at paper scale and WER dips further -- while remaining an "
      "overwhelming ownership proof (log10 P_c column), and arbitration "
      "still resolves for the owner (see ownership_dispute).\n");
  return 0;
}
