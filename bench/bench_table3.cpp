// Table 3: effectiveness of the insertion coefficients (alpha, beta).
// Grid {(1,0), (0.5,0.5), (0,1)} on opt-2.7b-sim AWQ INT4. The paper finds
// all three extract at 100% WER, with a slight quality cost at (0,1)
// (pure saliency ignores weight magnitude).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Table 3",
               "Scoring-coefficient ablation (alpha, beta) on opt-2.7b-sim "
               "AWQ INT4");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);

  const double base_ppl = ctx.ppl_of(original);
  const double base_acc = ctx.acc_of(original);
  std::printf("non-watermarked baseline: PPL %.2f, acc %.2f%%\n\n", base_ppl,
              base_acc);

  TablePrinter table({"(alpha, beta)", "PPL", "ZeroShotAcc%", "WER%"});
  const std::pair<double, double> grid[] = {{1.0, 0.0}, {0.5, 0.5}, {0.0, 1.0}};
  for (const auto& [alpha, beta] : grid) {
    WatermarkKey key = owner_key(QuantBits::kInt4);
    key.alpha = alpha;
    key.beta = beta;
    // Paper's ablation uses the capacity-limit signature length (100 bits
    // per layer on 10^6-weight layers); scaled here like Table 1.
    key.bits_per_layer = 24;
    key.candidate_ratio = 6;
    QuantizedModel wm = original;
    const EmMarkScheme scheme;
    scheme.insert(wm, *stats, key);
    const double ppl = ctx.ppl_of(wm);
    const double acc = ctx.acc_of(wm);
    const double wer =
        scheme.extract_derived(wm, original, *stats, key).wer_pct();
    table.add_row({"(" + TablePrinter::fmt(alpha, 1) + ", " +
                       TablePrinter::fmt(beta, 1) + ")",
                   TablePrinter::fmt(ppl), TablePrinter::fmt(acc),
                   TablePrinter::fmt(wer)});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): 100%% WER everywhere; (0,1) slightly worse "
      "PPL/accuracy than (1,0) and (0.5,0.5).\n");
  return 0;
}
