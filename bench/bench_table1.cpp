// Table 1: watermarked embedded LLM performance.
//
// Grid: 9 models (OPT 125M..30B, LLaMA-2 7B..70B) x {INT8, INT4} x
// {w/o WM, SpecMark, RandomWM, EmMark}; metrics PPL (down), zero-shot
// accuracy (up) and WER (up), plus the mean degradation column.
//
// All three schemes run through the unified WatermarkScheme registry --
// one insert/extract loop covers the whole row set, and adding a scheme to
// the registry adds its row here automatically via kSchemeRows.
//
// Expected shape (paper): SpecMark rows identical to w/o WM but 0% WER;
// RandomWM 100% WER with visible INT4 quality loss; EmMark 100% WER with
// no degradation anywhere.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "wm/scheme.h"

namespace {

using namespace emmark;
using namespace emmark::bench;

/// Paper row order (baselines first, EmMark last).
const std::vector<std::pair<std::string, const char*>> kSchemeRows = {
    {"specmark", "SpecMark"},
    {"randomwm", "RandomWM"},
    {"emmark", "EmMark"},
};

struct Cell {
  double ppl = 0.0;
  double acc = 0.0;
  double wer = -1.0;  // -1: not applicable (w/o WM row)
};

struct ModelColumn {
  std::string name;
  Cell none;
  std::map<std::string, Cell> by_scheme;
};

ModelColumn run_model(BenchContext& ctx, const std::string& name, QuantBits bits) {
  ModelColumn column;
  column.name = name;

  const QuantizedModel original = ctx.quantize(name, bits);
  column.none.ppl = ctx.ppl_of(original);
  column.none.acc = ctx.acc_of(original);

  auto stats = ctx.zoo().stats(name);
  const WatermarkKey key = owner_key(bits);

  for (const auto& [scheme_name, row_label] : kSchemeRows) {
    (void)row_label;
    const auto scheme = WatermarkRegistry::create(scheme_name);
    QuantizedModel wm = original;
    const SchemeRecord record = scheme->insert(wm, *stats, key);
    Cell cell;
    cell.wer = scheme->extract(wm, original, record).wer_pct();
    // SpecMark's sub-step perturbations round back to identical codes;
    // re-evaluate quality only if anything actually changed.
    bool changed = false;
    for (int64_t i = 0; i < wm.num_layers() && !changed; ++i) {
      changed = wm.layer(i).weights.codes() != original.layer(i).weights.codes();
    }
    if (changed) {
      cell.ppl = ctx.ppl_of(wm);
      cell.acc = ctx.acc_of(wm);
    } else {
      cell.ppl = column.none.ppl;
      cell.acc = column.none.acc;
    }
    column.by_scheme[scheme_name] = cell;
  }
  return column;
}

void print_grid(const std::vector<ModelColumn>& columns, QuantBits bits) {
  std::printf("\n--- %s quantization (%s for OPT / %s for LLaMA-2) ---\n",
              to_string(bits),
              bits == QuantBits::kInt4 ? "AWQ" : "SmoothQuant",
              bits == QuantBits::kInt4 ? "AWQ" : "LLM.int8()");

  auto emit_metric = [&](const char* metric, auto getter, bool delta_col) {
    TablePrinter table([&] {
      std::vector<std::string> headers{metric};
      for (const auto& c : columns) headers.push_back(zoo_entry(c.name).paper_name);
      if (delta_col) headers.push_back("mean-delta");
      return headers;
    }());
    auto add_row = [&](const char* label, auto cell_of) {
      std::vector<std::string> cells{label};
      double delta = 0.0;
      for (const auto& c : columns) {
        const Cell& cell = cell_of(c);
        const double value = getter(cell);
        cells.push_back(value < 0 ? std::string("-") : TablePrinter::fmt(value));
        delta += getter(cell) - getter(c.none);
      }
      if (delta_col) {
        cells.push_back(TablePrinter::fmt(delta / static_cast<double>(columns.size()), 3));
      }
      table.add_row(std::move(cells));
    };
    add_row("w/o WM", [](const ModelColumn& c) -> const Cell& { return c.none; });
    for (const auto& [scheme_name, row_label] : kSchemeRows) {
      add_row(row_label, [&scheme_name](const ModelColumn& c) -> const Cell& {
        return c.by_scheme.at(scheme_name);
      });
    }
    table.print();
  };

  emit_metric("PPL (down)", [](const Cell& c) { return c.ppl; }, true);
  std::printf("\n");
  emit_metric("ZeroShotAcc% (up)", [](const Cell& c) { return c.acc; }, true);
  std::printf("\n");
  emit_metric("WER% (up)", [](const Cell& c) { return c.wer; }, false);
}

}  // namespace

int main() {
  print_header("Table 1",
               "PPL / zero-shot accuracy / WER for {no-WM, SpecMark, RandomWM, "
               "EmMark} across both model families and bit widths");
  BenchContext ctx;
  ctx.zoo().prepare_all();

  for (QuantBits bits : {QuantBits::kInt8, QuantBits::kInt4}) {
    std::vector<ModelColumn> columns;
    for (const ZooEntry& entry : zoo_entries()) {
      std::fprintf(stderr, "[table1] %s %s...\n", entry.name.c_str(), to_string(bits));
      columns.push_back(run_model(ctx, entry.name, bits));
    }
    print_grid(columns, bits);
  }
  std::printf(
      "\nExpected shape: SpecMark == w/o WM with 0%% WER; RandomWM 100%% WER "
      "with INT4 quality loss; EmMark 100%% WER with ~0 degradation.\n");
  return 0;
}
