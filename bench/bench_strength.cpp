// Section 5.1/5.4 analysis: watermarking strength (Eq. 8).
//
// Reproduces the quoted numbers analytically:
//   * 40-bit INT4 layer signature  -> P_c = 9.09e-13 per layer
//   * 300-bit INT8 layer signature -> far below 1e-90 per layer
//   * 100-bit capacity point       -> ~1.57e-30
//   * n-layer model               -> strength^n (log10 scales linearly)
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/mathx.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Strength analysis (Eq. 8)",
               "Probability that a non-watermarked model matches the "
               "signature by chance");

  TablePrinter table({"bits |B|", "matched k", "log10 P_c", "P_c"});
  struct Row {
    int64_t n, k;
  };
  const Row rows[] = {{40, 40},   {40, 38},  {100, 100}, {100, 99},
                      {300, 300}, {300, 285}, {12, 12},   {1000, 990}};
  for (const Row& row : rows) {
    const double log10_p = log10_binomial_tail_half(row.n, row.k);
    char value[64];
    if (log10_p > -300) {
      std::snprintf(value, sizeof(value), "%.3g", std::pow(10.0, log10_p));
    } else {
      std::snprintf(value, sizeof(value), "1e%.0f", log10_p);
    }
    table.add_row({std::to_string(row.n), std::to_string(row.k),
                   TablePrinter::fmt(log10_p, 2), value});
  }
  table.print();

  std::printf("\nPaper anchors: 0.5^40 = %.3g (quoted 9.09e-13); "
              "P[X>=99 | n=100] = %.3g (quoted ~1.57e-30).\n",
              binomial_tail_half(40, 40), binomial_tail_half(100, 99));

  // Whole-model strength: per-layer strength compounds across n layers.
  TablePrinter model_table({"Model", "layers n", "bits/layer",
                            "log10 P_c (whole model)"});
  for (const ZooEntry& entry : zoo_entries()) {
    const int64_t per_block = entry.family == ArchFamily::kOptStyle ? 6 : 7;
    const int64_t layers = entry.n_layers * per_block + 1;
    const int64_t bits = kBitsPerLayerInt4;
    const double log10_per_layer = log10_binomial_tail_half(bits, bits);
    model_table.add_row({entry.paper_name, std::to_string(layers),
                         std::to_string(bits),
                         TablePrinter::fmt(log10_per_layer * static_cast<double>(layers), 1)});
  }
  model_table.print();
  std::printf("\n(The paper's OPT-2.7B figure is 9.09e-13^192; the scaling "
              "law -- exponent linear in layer count -- is what matters.)\n");
  return 0;
}
