// Section 5.3's "non-attacks": the two removal strategies the paper argues
// are self-defeating on embedded models.
//
//   Pruning: zeroing quantized weights destroys the compressed model's
//   ability long before it touches the (large-magnitude) watermark bits.
//   LoRA fine-tuning: QLoRA-style adapters never modify the quantized
//   integers, so the watermark survives verbatim while the adversary's
//   adaptation still works.
#include <cstdio>

#include "attack/lora_attack.h"
#include "attack/prune.h"
#include "bench_common.h"
#include "eval/perplexity.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Non-attacks (Section 5.3)",
               "Pruning and LoRA fine-tuning as (failed) removal strategies "
               "on opt-2.7b-sim AWQ INT4");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);

  const WatermarkKey key = owner_key(QuantBits::kInt4);
  const EmMarkScheme scheme;
  QuantizedModel watermarked = original;
  const SchemeRecord record = scheme.insert(watermarked, *stats, key);
  const double base_ppl = ctx.ppl_of(watermarked);

  std::printf("\n-- Pruning sweep (magnitude pruning of quantized codes) --\n");
  TablePrinter prune_table({"pruned fraction", "PPL", "WER%"});
  for (double fraction : {0.0, 0.1, 0.3, 0.5, 0.7}) {
    QuantizedModel pruned = watermarked;
    if (fraction > 0.0) {
      PruneConfig config;
      config.fraction = fraction;
      prune_attack(pruned, config);
    }
    const double ppl = ctx.ppl_of(pruned);
    const double wer = scheme.extract(pruned, original, record).wer_pct();
    prune_table.add_row({TablePrinter::fmt(fraction, 1), TablePrinter::fmt(ppl),
                         TablePrinter::fmt(wer)});
  }
  prune_table.print();
  std::printf("baseline watermarked PPL: %.2f -- pruning wrecks the model "
              "while WER stays high (the paper frames this as 'model ability "
              "breakdown').\n",
              base_ppl);

  std::printf("\n-- QLoRA-style fine-tuning (adapters on frozen base) --\n");
  LoraAttackConfig lora;
  lora.steps = 120;
  lora.rank = 4;
  const LoraAttackResult result = lora_finetune_attack(
      watermarked, ctx.zoo().env().corpus_shift_a.train, lora);
  const double wer_after =
      scheme.extract(watermarked, original, record).wer_pct();

  TablePrinter lora_table({"metric", "value"});
  lora_table.add_row({"adapter train loss (initial)",
                      TablePrinter::fmt(result.initial_loss, 3)});
  lora_table.add_row({"adapter train loss (final)",
                      TablePrinter::fmt(result.final_loss, 3)});
  lora_table.add_row({"quantized codes changed",
                      result.quantized_weights_unchanged ? "no" : "YES"});
  lora_table.add_row({"owner WER after fine-tune",
                      TablePrinter::fmt(wer_after)});
  lora_table.print();
  std::printf(
      "\nExpected shape (paper): adapters learn (loss drops) yet the "
      "quantized weights -- and therefore the watermark -- are untouched.\n");
  return 0;
}
