// Eval-path kernels: dispatched GEMM, fused dequant-GEMM, the table-driven
// DCT, and end-to-end quantized perplexity.
//
// Each phase carries its own in-bench legacy reference -- the pre-rewrite
// naive gemm_nt, materialize-then-multiply dequantization, and the
// std::cos direct-form DCT -- so the reported speedups are measured
// against what the eval path actually cost before the vectorized kernels
// landed, not against the current scalar tier (which already uses the
// tiled drivers and cosine table). Every kernel level is then swept with
// the pool pinned at one thread, and results are checked against the
// legacy output: GEMM and dequant must match bit-for-bit (the kernel
// contract), the DCT within round-off (same per-output sum order; only
// the cosine factors differ sub-ULP from std::cos).
//
// Beyond the per-level sweep, the perf_opt-PR phases report on the
// batched eval path: a per-op breakdown of the ppl phase (phaseprof),
// an M-sweep showing the fused dequant-GEMM's per-row cost amortizing as
// the activation batch grows, a packed-int4 vs byte-per-code twin
// comparison (identical codes/scales/decorations, so outputs must match
// bit for bit while the packed layout halves the weight-stream bytes;
// timed as the pure dequant phase and the fused dequant-GEMM), a
// batch-1 streaming eval with and without window merging
// (PplConfig::max_tokens_per_forward), and the NT-store panel hint.
//
// A table prints per phase, plus one machine-readable JSON line
// (scripts/bench_baseline.sh folds it into BENCH_10.json).
//
// Usage: bench_eval_path [--model <zoo-name>] [--repeats N] [--quick]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "quant/qtensor.h"
#include "signal/dct.h"
#include "tensor/gemm.h"
#include "util/argparse.h"
#include "util/phaseprof.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace {

using namespace emmark;
using namespace emmark::bench;

/// Largest zoo entry by quantized-parameter proxy.
const ZooEntry& largest_entry() {
  const auto& entries = zoo_entries();
  const ZooEntry* best = &entries.front();
  auto weight_proxy = [](const ZooEntry& e) {
    return e.n_layers * (4 * e.d_model * e.d_model + 3 * e.d_model * e.ffn_hidden);
  };
  for (const ZooEntry& e : entries) {
    if (weight_proxy(e) > weight_proxy(*best)) best = &e;
  }
  return *best;
}

double best_of(int repeats, const std::function<double()>& run_ms) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) best = std::min(best, run_ms());
  return best;
}

/// GEMM-sized work finishes in ~0.1 ms, where timer resolution and
/// allocator jitter swamp a single call; every sample of the gemm and
/// dequant phases loops the op this many times and reports the mean, so
/// the 15% CI regression gate sees settled numbers.
constexpr int kInnerIters = 16;

// --- legacy references (pre-kernel eval path, verbatim) -----------------

/// The naive register-accumulating gemm_nt the eval path ran before the
/// tiled drivers: C[i][j] = dot(A row i, B row j), ascending p.
void legacy_gemm_nt(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

/// The element-at-a-time dequantize the eval path materialized weights
/// through before dequant_span_f32 existed.
Tensor legacy_dequantize(const QuantizedTensor& w) {
  Tensor out({w.rows(), w.cols()});
  for (int64_t r = 0; r < w.rows(); ++r) {
    float* row = out.data() + r * w.cols();
    for (int64_t c = 0; c < w.cols(); ++c) {
      row[c] = static_cast<float>(w.code(r, c)) * w.scale(r, c);
      if (w.has_input_scale()) row[c] /= w.input_scale()[static_cast<size_t>(c)];
    }
  }
  for (size_t k = 0; k < w.outlier_cols().size(); ++k) {
    const int64_t c = w.outlier_cols()[k];
    for (int64_t r = 0; r < w.rows(); ++r) {
      out.at(r, c) = w.dequantize_at(r, c);
    }
  }
  return out;
}

/// The std::cos direct-form DCT-II SpecMark shipped with before the
/// cosine table.
std::vector<double> legacy_dct2(std::span<const double> x) {
  const size_t n = x.size();
  std::vector<double> y(n, 0.0);
  if (n == 0) return y;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    y[k] = acc * (k == 0 ? norm0 : norm);
  }
  return y;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// An int8-STORAGE twin of an int4 tensor: same logical codes (the int4
/// grid is a subset of int8's), same scales, input scale, and outliers --
/// so dequantization is bit-identical -- but one byte per code instead of
/// two codes per byte. Timing both isolates the packed layout's effect on
/// the weight-stream bandwidth of the fused dequant-GEMM.
QuantizedTensor byte_per_code_twin(const QuantizedTensor& w) {
  QuantizedTensor t(w.rows(), w.cols(), QuantBits::kInt8, w.group_size());
  const std::vector<int8_t> codes = w.codes();
  for (int64_t i = 0; i < w.numel(); ++i) t.set_code_flat(i, codes[static_cast<size_t>(i)]);
  const int64_t gs = w.group_size() > 0 ? w.group_size() : w.cols();
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t g = 0; g * gs < w.cols(); ++g) t.set_scale(r, g, w.scale(r, g * gs));
  }
  if (w.has_input_scale()) t.set_input_scale(w.input_scale());
  if (!w.outlier_cols().empty()) {
    const auto& ocols = w.outlier_cols();
    Tensor ow({w.rows(), static_cast<int64_t>(ocols.size())});
    for (int64_t r = 0; r < w.rows(); ++r) {
      for (size_t c = 0; c < ocols.size(); ++c) {
        ow.at(r, static_cast<int64_t>(c)) = w.dequantize_at(r, ocols[c]);
      }
    }
    t.set_outliers(ocols, std::move(ow));
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_eval_path",
                 "Dispatched eval-path kernels vs the pre-rewrite legacy path");
  args.add_option("model", largest_entry().name, "zoo model for dequant/ppl");
  args.add_option("repeats", "5", "timing repeats per cell (best-of)");
  args.add_flag("quick", "smaller problem sizes, single repeat");
  if (!args.parse(argc, argv)) return 2;
  const std::string model_name = args.get("model");
  const bool quick = args.get_flag("quick");
  const int repeats =
      quick ? 1 : std::max(1, static_cast<int>(args.get_int("repeats")));

  const auto& entries = zoo_entries();
  if (std::none_of(entries.begin(), entries.end(),
                   [&](const ZooEntry& e) { return e.name == model_name; })) {
    std::fprintf(stderr, "unknown zoo model: %s\navailable:", model_name.c_str());
    for (const ZooEntry& e : entries) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  print_header("Eval-path kernels",
               "Legacy naive path vs dispatched GEMM / fused dequant / DCT");

  BenchContext ctx;
  const ZooEntry& entry = zoo_entry(model_name);
  auto fp = ctx.zoo().model(model_name);
  auto stats = ctx.zoo().stats(model_name);
  const QuantizedModel qm(*fp, *stats,
                          method_for(entry.family, QuantBits::kInt4));

  // Largest quantization layer: the dequant timing target.
  int64_t big = 0;
  for (int64_t i = 1; i < qm.num_layers(); ++i) {
    if (qm.layer(i).weights.numel() > qm.layer(big).weights.numel()) big = i;
  }
  const QuantizedTensor& w = qm.layer(big).weights;

  // GEMM shape: a token block against the model's FFN up-projection, the
  // widest matmul a forward pass runs.
  const int64_t gm = quick ? 8 : 32;
  const int64_t gk = entry.d_model;
  const int64_t gn = entry.ffn_hidden;
  Rng rng(42);
  std::vector<float> ga(static_cast<size_t>(gm * gk));
  std::vector<float> gb(static_cast<size_t>(gn * gk));  // B^T row-major
  for (float& v : ga) v = rng.next_normal_f();
  for (float& v : gb) v = rng.next_normal_f();
  std::vector<float> dq_x(static_cast<size_t>(gm * w.cols()));
  for (float& v : dq_x) v = rng.next_normal_f();

  const size_t dct_n = quick ? 512 : 2048;  // SpecMark's chunk length
  std::vector<double> dct_x(dct_n);
  for (double& v : dct_x) v = rng.next_normal();

  PplConfig ppl_config;
  ppl_config.seq_len = 32;
  const int ppl_repeats = quick ? 1 : std::min(repeats, 2);

  // --- legacy row -------------------------------------------------------
  ThreadPool pool(1);
  ThreadPool::ScopedOverride over(pool);

  std::vector<float> ref_gemm(static_cast<size_t>(gm * gn));
  const auto time_legacy_gemm = [&] {
    return best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        legacy_gemm_nt(ga.data(), gb.data(), ref_gemm.data(), gm, gk, gn);
      }
      return t.milliseconds() / kInnerIters;
    });
  };
  double legacy_gemm_ms = time_legacy_gemm();

  std::vector<float> ref_dequant(static_cast<size_t>(gm * w.rows()));
  const auto time_legacy_dequant = [&] {
    return best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        const Tensor weff = legacy_dequantize(w);
        legacy_gemm_nt(dq_x.data(), weff.data(), ref_dequant.data(), gm,
                       w.cols(), w.rows());
      }
      return t.milliseconds() / kInnerIters;
    });
  };
  double legacy_dequant_ms = time_legacy_dequant();

  std::vector<double> ref_dct;
  const auto time_legacy_dct = [&] {
    return best_of(repeats, [&] {
      Timer t;
      ref_dct = legacy_dct2(std::span<const double>(dct_x));
      return t.milliseconds();
    });
  };
  double legacy_dct_ms = time_legacy_dct();

  double ref_ppl = 0.0;
  const double legacy_ppl_ms = best_of(ppl_repeats, [&] {
    Timer t;
    auto m = qm.materialize();
    ref_ppl = perplexity(*m, ctx.test_stream(), ppl_config);
    return t.milliseconds();
  });

  // --- dispatched rows, per kernel level --------------------------------
  struct Row {
    kernels::Level level;
    double gemm_ms;
    double dequant_ms;
    double dct_ms;
    double ppl_ms;
  };
  std::vector<Row> rows;
  for (kernels::Level level : kernels::supported_levels()) {
    kernels::ScopedLevelOverride kernel(level);
    const char* label = kernels::to_string(level);
    Row row{level, 0.0, 0.0, 0.0, 0.0};

    std::vector<float> out(static_cast<size_t>(gm * gn));
    row.gemm_ms = best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        gemm_nt(ga.data(), gb.data(), out.data(), gm, gk, gn);
      }
      return t.milliseconds() / kInnerIters;
    });
    if (!bitwise_equal(out, ref_gemm)) {
      std::fprintf(stderr, "FATAL: gemm_nt at %s diverged from legacy\n", label);
      return 1;
    }

    std::vector<float> dq_out(static_cast<size_t>(gm * w.rows()));
    row.dequant_ms = best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        dequant_gemm_nt(dq_x.data(), w, dq_out.data(), gm);
      }
      return t.milliseconds() / kInnerIters;
    });
    if (!bitwise_equal(dq_out, ref_dequant)) {
      std::fprintf(stderr, "FATAL: fused dequant-GEMM at %s diverged\n", label);
      return 1;
    }

    std::vector<double> dct_out;
    row.dct_ms = best_of(repeats, [&] {
      Timer t;
      dct_out = dct2(std::span<const double>(dct_x));
      return t.milliseconds();
    });
    for (size_t i = 0; i < dct_n; ++i) {
      if (std::fabs(dct_out[i] - ref_dct[i]) > 1e-9) {
        std::fprintf(stderr, "FATAL: dct2 at %s diverged at bin %zu\n", label, i);
        return 1;
      }
    }

    // Interleave the legacy reference cells with every level's cells:
    // each gated speedup ratio divides a legacy min by a dispatched min,
    // and on shared hosts mins taken from disjoint time windows drift
    // apart (the machine is simply faster during one of them), faking
    // regressions in bench_baseline.sh --compare. Sampling legacy next to
    // every level gives both sides of the ratio the same machine states.
    legacy_gemm_ms = std::min(legacy_gemm_ms, time_legacy_gemm());
    legacy_dequant_ms = std::min(legacy_dequant_ms, time_legacy_dequant());
    legacy_dct_ms = std::min(legacy_dct_ms, time_legacy_dct());

    double ppl = 0.0;
    row.ppl_ms = best_of(ppl_repeats, [&] {
      Timer t;
      ppl = perplexity(qm, ctx.test_stream(), ppl_config);
      return t.milliseconds();
    });
    if (ppl != ref_ppl) {
      std::fprintf(stderr, "FATAL: fused perplexity at %s != materialized\n",
                   label);
      return 1;
    }
    rows.push_back(row);
  }

  // Second timing window for every micro cell, legacy and dispatched. The
  // first windows run tens of seconds apart (the per-level ppl runs sit
  // between them), and on shared hosts scheduler noise arrives in
  // multi-second bursts -- a burst inside any single window skews the
  // speedup ratios bench_baseline.sh --compare gates. min() across two
  // well-separated windows strips the burst from both sides of each
  // ratio; the legacy cells stay interleaved with each level here too.
  for (Row& row : rows) {
    kernels::ScopedLevelOverride kernel(row.level);
    legacy_gemm_ms = std::min(legacy_gemm_ms, time_legacy_gemm());
    legacy_dequant_ms = std::min(legacy_dequant_ms, time_legacy_dequant());
    legacy_dct_ms = std::min(legacy_dct_ms, time_legacy_dct());
    std::vector<float> out(static_cast<size_t>(gm * gn));
    row.gemm_ms = std::min(row.gemm_ms, best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        gemm_nt(ga.data(), gb.data(), out.data(), gm, gk, gn);
      }
      return t.milliseconds() / kInnerIters;
    }));
    std::vector<float> dq_out(static_cast<size_t>(gm * w.rows()));
    row.dequant_ms = std::min(row.dequant_ms, best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        dequant_gemm_nt(dq_x.data(), w, dq_out.data(), gm);
      }
      return t.milliseconds() / kInnerIters;
    }));
    std::vector<double> dct_out;
    row.dct_ms = std::min(row.dct_ms, best_of(repeats, [&] {
      Timer t;
      dct_out = dct2(std::span<const double>(dct_x));
      return t.milliseconds();
    }));
  }

  // --- per-op breakdown of the ppl phase (default level) ----------------
  // kDequant nests inside kGemm (the fused path packs dequantized panels
  // from inside the GEMM driver), so GEMM proper is the difference. With
  // the pool pinned at one thread the shares are exact wall attribution.
  double bd_wall_ms = 0.0;
  phaseprof::set_enabled(true);
  phaseprof::reset();
  {
    Timer t;
    perplexity(qm, ctx.test_stream(), ppl_config);
    bd_wall_ms = t.milliseconds();
  }
  phaseprof::set_enabled(false);
  auto phase_ms = [](phaseprof::Phase p) {
    return static_cast<double>(phaseprof::total_ns(p)) * 1e-6;
  };
  const double bd_gemm_ms = phase_ms(phaseprof::Phase::kGemm);
  const double bd_dequant_ms = phase_ms(phaseprof::Phase::kDequant);
  const double bd_gemm_excl_ms = bd_gemm_ms - bd_dequant_ms;
  const double bd_attn_ms = phase_ms(phaseprof::Phase::kAttention);
  const double bd_nll_ms = phase_ms(phaseprof::Phase::kSoftmaxNll);
  const double bd_other_ms =
      std::max(0.0, bd_wall_ms - bd_gemm_ms - bd_attn_ms - bd_nll_ms);

  // --- M-sweep: fused dequant-GEMM per-row cost vs batch height ---------
  // The batched eval path exists to raise M: every K-panel unpack/dequant
  // is paid once per panel and amortized over M activation rows.
  const std::vector<int64_t> m_sweep_ms_values = quick
      ? std::vector<int64_t>{1, 8, 32}
      : std::vector<int64_t>{1, 8, 32, 256};
  struct MSweepRow { int64_t m; double ms; };
  std::vector<MSweepRow> m_sweep;
  {
    const int64_t max_m = m_sweep_ms_values.back();
    std::vector<float> sweep_x(static_cast<size_t>(max_m * w.cols()));
    for (float& v : sweep_x) v = rng.next_normal_f();
    std::vector<float> sweep_out(static_cast<size_t>(max_m * w.rows()));
    for (const int64_t m : m_sweep_ms_values) {
      const int iters = m >= 256 ? 2 : kInnerIters;
      const double ms = best_of(repeats, [&] {
        Timer t;
        for (int it = 0; it < iters; ++it) {
          dequant_gemm_nt(sweep_x.data(), w, sweep_out.data(), m);
        }
        return t.milliseconds() / iters;
      });
      m_sweep.push_back({m, ms});
    }
  }

  // --- packed int4 vs byte-per-code twin --------------------------------
  // The zoo layers are KB-sized and live in L1, where the packed layout's
  // halved weight stream cannot show up; the twin comparison instead runs
  // at a production-like weight size where the fused dequant-GEMM streams
  // the codes from memory every call. Identical codes/scales/input scale
  // by construction, so the outputs must still match bit for bit.
  const int64_t pk_rows = quick ? 1024 : 4096;
  const int64_t pk_cols = quick ? 4096 : 8192;
  QuantizedTensor w_big(pk_rows, pk_cols, QuantBits::kInt4, 128);
  {
    Rng prng(7);
    for (int64_t i = 0; i < w_big.numel(); ++i) {
      w_big.set_code_flat(
          i, static_cast<int8_t>(static_cast<int64_t>(prng.next_u64() % 15) - 7));
    }
    for (int64_t r = 0; r < pk_rows; ++r) {
      for (int64_t g = 0; g * 128 < pk_cols; ++g) {
        w_big.set_scale(r, g, 0.005f + 0.05f * prng.next_float());
      }
    }
    std::vector<float> in_scale(static_cast<size_t>(pk_cols));
    for (float& s : in_scale) s = 0.5f + prng.next_float();
    w_big.set_input_scale(std::move(in_scale));
  }
  const QuantizedTensor w_byte = byte_per_code_twin(w_big);
  const int64_t pk_m = 8;
  std::vector<float> pk_x(static_cast<size_t>(pk_m * pk_cols));
  for (float& v : pk_x) v = rng.next_normal_f();
  std::vector<float> packed_out(static_cast<size_t>(pk_m * pk_rows));
  std::vector<float> byte_out(static_cast<size_t>(pk_m * pk_rows));
  const int pk_iters = quick ? 1 : 2;
  // Dequant phase: stream every row through dequant_row_span into a reused
  // row buffer -- the panel packers' exact building block, and the phase
  // where the storage layout is the only variable (the packed side moves
  // half the code bytes and decodes nibbles in registers). Fused phase:
  // the full dequant_gemm_nt, where the shared f32 panel traffic and GEMM
  // flops dominate and the layouts are expected to land near parity.
  // Packed/byte timings interleave inside each best-of repeat so a noisy
  // neighbor can't bias one side of the ratio.
  double dq_packed_ms = 1e300, dq_byte_ms = 1e300;
  double fused_packed_ms = 1e300, fused_byte_ms = 1e300;
  std::vector<float> dq_row_packed(static_cast<size_t>(pk_cols));
  std::vector<float> dq_row_byte(static_cast<size_t>(pk_cols));
  for (int rep = 0; rep < std::max(repeats, 3); ++rep) {
    {
      Timer t;
      for (int64_t r = 0; r < pk_rows; ++r) {
        w_big.dequant_row_span(r, 0, pk_cols, dq_row_packed.data());
      }
      dq_packed_ms = std::min(dq_packed_ms, t.milliseconds());
    }
    {
      Timer t;
      for (int64_t r = 0; r < pk_rows; ++r) {
        w_byte.dequant_row_span(r, 0, pk_cols, dq_row_byte.data());
      }
      dq_byte_ms = std::min(dq_byte_ms, t.milliseconds());
    }
    {
      Timer t;
      for (int it = 0; it < pk_iters; ++it) {
        dequant_gemm_nt(pk_x.data(), w_big, packed_out.data(), pk_m);
      }
      fused_packed_ms = std::min(fused_packed_ms, t.milliseconds() / pk_iters);
    }
    {
      Timer t;
      for (int it = 0; it < pk_iters; ++it) {
        dequant_gemm_nt(pk_x.data(), w_byte, byte_out.data(), pk_m);
      }
      fused_byte_ms = std::min(fused_byte_ms, t.milliseconds() / pk_iters);
    }
  }
  if (!bitwise_equal(dq_row_packed, dq_row_byte)) {
    std::fprintf(stderr,
                 "FATAL: packed int4 dequant diverged from byte-per-code twin\n");
    return 1;
  }
  if (!bitwise_equal(packed_out, byte_out)) {
    std::fprintf(stderr, "FATAL: packed int4 diverged from byte-per-code twin\n");
    return 1;
  }

  // --- batched vs per-window eval ---------------------------------------
  // The serving-side quality-check shape: a caller streaming one window at
  // a time (batch_size = 1, M = seq_len rows per forward). Same fused
  // path, same windows, same tokens: the only difference is whether
  // consecutive windows merge into one (batch * seq) x K forward (this
  // PR's batched eval, default max_tokens_per_forward) or run one forward
  // per window (the pre-batching behavior, max_tokens_per_forward = 0), so
  // the ratio isolates the panel-pack amortization the merge buys.
  PplConfig stream_config = ppl_config;
  stream_config.batch_size = 1;
  PplConfig per_window_config = stream_config;
  per_window_config.max_tokens_per_forward = 0;
  double ppl_check = 0.0;
  const double per_window_ppl_ms = best_of(ppl_repeats, [&] {
    Timer t;
    ppl_check = perplexity(qm, ctx.test_stream(), per_window_config);
    return t.milliseconds();
  });
  double batched_ppl = 0.0;
  const double batched_ppl_ms = best_of(ppl_repeats, [&] {
    Timer t;
    batched_ppl = perplexity(qm, ctx.test_stream(), stream_config);
    return t.milliseconds();
  });
  if (std::fabs(batched_ppl - ppl_check) > 1e-9 * std::fabs(ppl_check)) {
    std::fprintf(stderr, "FATAL: batched eval changed perplexity\n");
    return 1;
  }

  // --- NT-store panel experiment ----------------------------------------
  // Times the gemm_panel microkernel directly on a large output tile with
  // and without the streaming-store hint (the env-gated production path
  // caches its knob at first use, so the flag is passed explicitly here).
  // The stored bits are identical either way; report whatever the numbers
  // say -- at this tile size the hint is expected to be roughly neutral.
  double nt_off_ms = 0.0, nt_on_ms = 0.0;
  {
    const int64_t pb = 256, jb = quick ? 2048 : 8192;
    std::vector<float> storage(static_cast<size_t>(pb * jb + jb + 32));
    float* base = storage.data();
    auto align64 = [](float* p) {
      return reinterpret_cast<float*>(
          (reinterpret_cast<uintptr_t>(p) + 63) & ~uintptr_t{63});
    };
    float* panel = align64(base);
    float* dst = align64(panel + pb * jb);
    for (int64_t i = 0; i < pb * jb; ++i) panel[i] = 0.001f * static_cast<float>(i % 97);
    std::vector<float> xcol(static_cast<size_t>(pb), 0.5f);
    const kernels::Ops& ops = kernels::active_ops();
    std::vector<float> nt_off_result, nt_on_result;
    for (const uint32_t flags : {0u, kernels::kGemmFlagNtStore}) {
      const double ms = best_of(repeats, [&] {
        Timer t;
        for (int it = 0; it < kInnerIters; ++it) {
          std::memset(dst, 0, static_cast<size_t>(jb) * sizeof(float));
          ops.gemm_panel_f32(dst, panel, jb, xcol.data(), 1, pb, jb, flags);
        }
        return t.milliseconds() / kInnerIters;
      });
      (flags ? nt_on_ms : nt_off_ms) = ms;
      auto& result = flags ? nt_on_result : nt_off_result;
      result.assign(dst, dst + jb);
    }
    if (!bitwise_equal(nt_off_result, nt_on_result)) {
      std::fprintf(stderr, "FATAL: NT-store panel result diverged\n");
      return 1;
    }
  }

  TablePrinter table({"path", "gemm ms", "dequant ms", "dct ms", "ppl ms",
                      "gemm x", "dequant x", "dct x", "ppl x"});
  table.add_row({"legacy", TablePrinter::fmt(legacy_gemm_ms, 3),
                 TablePrinter::fmt(legacy_dequant_ms, 3),
                 TablePrinter::fmt(legacy_dct_ms, 3),
                 TablePrinter::fmt(legacy_ppl_ms, 1), "1.00", "1.00", "1.00",
                 "1.00"});
  for (const Row& row : rows) {
    table.add_row({kernels::to_string(row.level),
                   TablePrinter::fmt(row.gemm_ms, 3),
                   TablePrinter::fmt(row.dequant_ms, 3),
                   TablePrinter::fmt(row.dct_ms, 3),
                   TablePrinter::fmt(row.ppl_ms, 1),
                   TablePrinter::fmt(legacy_gemm_ms / row.gemm_ms, 2),
                   TablePrinter::fmt(legacy_dequant_ms / row.dequant_ms, 2),
                   TablePrinter::fmt(legacy_dct_ms / row.dct_ms, 2),
                   TablePrinter::fmt(legacy_ppl_ms / row.ppl_ms, 2)});
  }
  table.print();
  std::printf("(gemm: %lld x %lld x %lld nt; dequant: fused vs materialize, "
              "layer %s; dct: n = %zu; 1 pool thread; active default = %s)\n",
              static_cast<long long>(gm), static_cast<long long>(gk),
              static_cast<long long>(gn), qm.layer(big).name.c_str(), dct_n,
              kernels::to_string(kernels::default_level()));

  std::printf("\nppl per-op breakdown (default level, %.1f ms wall):\n",
              bd_wall_ms);
  TablePrinter bd_table({"op", "ms", "share"});
  auto share = [&](double ms) {
    return TablePrinter::fmt(bd_wall_ms > 0.0 ? 100.0 * ms / bd_wall_ms : 0.0, 1) + "%";
  };
  bd_table.add_row({"gemm (excl dequant)", TablePrinter::fmt(bd_gemm_excl_ms, 1),
                    share(bd_gemm_excl_ms)});
  bd_table.add_row({"dequant panel pack", TablePrinter::fmt(bd_dequant_ms, 1),
                    share(bd_dequant_ms)});
  bd_table.add_row({"attention", TablePrinter::fmt(bd_attn_ms, 1), share(bd_attn_ms)});
  bd_table.add_row({"softmax+nll", TablePrinter::fmt(bd_nll_ms, 1), share(bd_nll_ms)});
  bd_table.add_row({"other", TablePrinter::fmt(bd_other_ms, 1), share(bd_other_ms)});
  bd_table.print();

  std::printf("\nfused dequant-GEMM M-sweep (default level; per-row cost "
              "amortizes the per-panel dequant):\n");
  TablePrinter m_table({"M", "ms", "us/row"});
  for (const MSweepRow& r : m_sweep) {
    m_table.add_row({std::to_string(r.m), TablePrinter::fmt(r.ms, 3),
                     TablePrinter::fmt(1000.0 * r.ms / static_cast<double>(r.m), 2)});
  }
  m_table.print();

  std::printf("\npacked int4 vs byte-per-code twin (%lld x %lld synthetic "
              "weight, fused M = %lld, bit-identical outputs):\n",
              static_cast<long long>(pk_rows), static_cast<long long>(pk_cols),
              static_cast<long long>(pk_m));
  TablePrinter p_table(
      {"phase", "byte ms", "packed ms", "speedup", "packed/byte bytes"});
  p_table.add_row({"dequant (row spans)", TablePrinter::fmt(dq_byte_ms, 3),
                   TablePrinter::fmt(dq_packed_ms, 3),
                   TablePrinter::fmt(dq_byte_ms / dq_packed_ms, 2),
                   std::to_string(w_big.storage_bytes()) + "/" +
                       std::to_string(w_byte.storage_bytes())});
  p_table.add_row({"fused dequant-GEMM", TablePrinter::fmt(fused_byte_ms, 3),
                   TablePrinter::fmt(fused_packed_ms, 3),
                   TablePrinter::fmt(fused_byte_ms / fused_packed_ms, 2), ""});
  p_table.print();
  std::printf("(dequant streams codes at half the bytes; the fused phase is "
              "GEMM-flop-bound, so parity there means the packed decode is "
              "free)\n");

  std::printf("\nbatched eval (default level, fused path, batch-1 streaming "
              "windows): per-window %.1f ms, merged %.1f ms (%.2fx, cap %lld "
              "tokens/forward)\n",
              per_window_ppl_ms, batched_ppl_ms,
              per_window_ppl_ms / batched_ppl_ms,
              static_cast<long long>(stream_config.max_tokens_per_forward));

  std::printf("\nNT-store panel hint (gemm_panel, default level): off %.3f ms, "
              "on %.3f ms (%.2fx)\n",
              nt_off_ms, nt_on_ms, nt_off_ms / nt_on_ms);

  std::printf("\nJSON: {\"bench\":\"eval_path\",\"model\":\"%s\",\"repeats\":%d,"
              "\"quick\":%s,\"kernel_default\":\"%s\","
              "\"gemm_shape\":[%lld,%lld,%lld],\"dct_n\":%zu,"
              "\"legacy\":{\"gemm_ms\":%.4f,\"dequant_ms\":%.4f,"
              "\"dct_ms\":%.4f,\"ppl_ms\":%.2f},\"kernels\":[",
              model_name.c_str(), repeats, quick ? "true" : "false",
              kernels::to_string(kernels::default_level()),
              static_cast<long long>(gm), static_cast<long long>(gk),
              static_cast<long long>(gn), dct_n, legacy_gemm_ms,
              legacy_dequant_ms, legacy_dct_ms, legacy_ppl_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%s{\"kernel\":\"%s\",\"gemm_ms\":%.4f,\"dequant_ms\":%.4f,"
                "\"dct_ms\":%.4f,\"ppl_ms\":%.2f,\"gemm_speedup\":%.3f,"
                "\"dequant_speedup\":%.3f,\"dct_speedup\":%.3f,"
                "\"ppl_speedup\":%.3f}",
                i ? "," : "", kernels::to_string(row.level), row.gemm_ms,
                row.dequant_ms, row.dct_ms, row.ppl_ms,
                legacy_gemm_ms / row.gemm_ms,
                legacy_dequant_ms / row.dequant_ms, legacy_dct_ms / row.dct_ms,
                legacy_ppl_ms / row.ppl_ms);
  }
  std::printf("],\"ppl_phases\":{\"wall_ms\":%.2f,\"gemm_excl_ms\":%.2f,"
              "\"dequant_ms\":%.2f,\"attention_ms\":%.2f,\"softmax_nll_ms\":%.2f,"
              "\"other_ms\":%.2f},\"m_sweep\":[",
              bd_wall_ms, bd_gemm_excl_ms, bd_dequant_ms, bd_attn_ms, bd_nll_ms,
              bd_other_ms);
  for (size_t i = 0; i < m_sweep.size(); ++i) {
    std::printf("%s{\"m\":%lld,\"dequant_gemm_ms\":%.4f,\"us_per_row\":%.3f}",
                i ? "," : "", static_cast<long long>(m_sweep[i].m), m_sweep[i].ms,
                1000.0 * m_sweep[i].ms / static_cast<double>(m_sweep[i].m));
  }
  std::printf("],\"packed_int4\":{\"packed_ms\":%.4f,\"byte_ms\":%.4f,"
              "\"speedup\":%.3f,\"fused_packed_ms\":%.4f,\"fused_byte_ms\":%.4f,"
              "\"fused_speedup\":%.3f,\"packed_bytes\":%zu,\"byte_bytes\":%zu},"
              "\"batched_eval\":{\"per_window_ms\":%.2f,\"merged_ms\":%.2f,"
              "\"speedup\":%.3f,\"max_tokens_per_forward\":%lld},"
              "\"nt_panel\":{\"off_ms\":%.4f,\"on_ms\":%.4f}}\n",
              dq_packed_ms, dq_byte_ms, dq_byte_ms / dq_packed_ms,
              fused_packed_ms, fused_byte_ms, fused_byte_ms / fused_packed_ms,
              w_big.storage_bytes(), w_byte.storage_bytes(), per_window_ppl_ms,
              batched_ppl_ms, per_window_ppl_ms / batched_ppl_ms,
              static_cast<long long>(stream_config.max_tokens_per_forward),
              nt_off_ms, nt_on_ms);
  return 0;
}
