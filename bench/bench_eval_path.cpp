// Eval-path kernels: dispatched GEMM, fused dequant-GEMM, the table-driven
// DCT, and end-to-end quantized perplexity.
//
// Each phase carries its own in-bench legacy reference -- the pre-rewrite
// naive gemm_nt, materialize-then-multiply dequantization, and the
// std::cos direct-form DCT -- so the reported speedups are measured
// against what the eval path actually cost before the vectorized kernels
// landed, not against the current scalar tier (which already uses the
// tiled drivers and cosine table). Every kernel level is then swept with
// the pool pinned at one thread, and results are checked against the
// legacy output: GEMM and dequant must match bit-for-bit (the kernel
// contract), the DCT within round-off (same per-output sum order; only
// the cosine factors differ sub-ULP from std::cos).
//
// A table prints per phase, plus one machine-readable JSON line
// (scripts/bench_baseline.sh folds it into BENCH_8.json).
//
// Usage: bench_eval_path [--model <zoo-name>] [--repeats N] [--quick]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "quant/qtensor.h"
#include "signal/dct.h"
#include "tensor/gemm.h"
#include "util/argparse.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace {

using namespace emmark;
using namespace emmark::bench;

/// Largest zoo entry by quantized-parameter proxy.
const ZooEntry& largest_entry() {
  const auto& entries = zoo_entries();
  const ZooEntry* best = &entries.front();
  auto weight_proxy = [](const ZooEntry& e) {
    return e.n_layers * (4 * e.d_model * e.d_model + 3 * e.d_model * e.ffn_hidden);
  };
  for (const ZooEntry& e : entries) {
    if (weight_proxy(e) > weight_proxy(*best)) best = &e;
  }
  return *best;
}

double best_of(int repeats, const std::function<double()>& run_ms) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) best = std::min(best, run_ms());
  return best;
}

/// GEMM-sized work finishes in ~0.1 ms, where timer resolution and
/// allocator jitter swamp a single call; every sample of the gemm and
/// dequant phases loops the op this many times and reports the mean, so
/// the 15% CI regression gate sees settled numbers.
constexpr int kInnerIters = 16;

// --- legacy references (pre-kernel eval path, verbatim) -----------------

/// The naive register-accumulating gemm_nt the eval path ran before the
/// tiled drivers: C[i][j] = dot(A row i, B row j), ascending p.
void legacy_gemm_nt(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

/// The element-at-a-time dequantize the eval path materialized weights
/// through before dequant_span_f32 existed.
Tensor legacy_dequantize(const QuantizedTensor& w) {
  Tensor out({w.rows(), w.cols()});
  for (int64_t r = 0; r < w.rows(); ++r) {
    float* row = out.data() + r * w.cols();
    for (int64_t c = 0; c < w.cols(); ++c) {
      row[c] = static_cast<float>(w.code(r, c)) * w.scale(r, c);
      if (w.has_input_scale()) row[c] /= w.input_scale()[static_cast<size_t>(c)];
    }
  }
  for (size_t k = 0; k < w.outlier_cols().size(); ++k) {
    const int64_t c = w.outlier_cols()[k];
    for (int64_t r = 0; r < w.rows(); ++r) {
      out.at(r, c) = w.dequantize_at(r, c);
    }
  }
  return out;
}

/// The std::cos direct-form DCT-II SpecMark shipped with before the
/// cosine table.
std::vector<double> legacy_dct2(std::span<const double> x) {
  const size_t n = x.size();
  std::vector<double> y(n, 0.0);
  if (n == 0) return y;
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi / static_cast<double>(n) *
                             (static_cast<double>(i) + 0.5) *
                             static_cast<double>(k));
    }
    y[k] = acc * (k == 0 ? norm0 : norm);
  }
  return y;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_eval_path",
                 "Dispatched eval-path kernels vs the pre-rewrite legacy path");
  args.add_option("model", largest_entry().name, "zoo model for dequant/ppl");
  args.add_option("repeats", "5", "timing repeats per cell (best-of)");
  args.add_flag("quick", "smaller problem sizes, single repeat");
  if (!args.parse(argc, argv)) return 2;
  const std::string model_name = args.get("model");
  const bool quick = args.get_flag("quick");
  const int repeats =
      quick ? 1 : std::max(1, static_cast<int>(args.get_int("repeats")));

  const auto& entries = zoo_entries();
  if (std::none_of(entries.begin(), entries.end(),
                   [&](const ZooEntry& e) { return e.name == model_name; })) {
    std::fprintf(stderr, "unknown zoo model: %s\navailable:", model_name.c_str());
    for (const ZooEntry& e : entries) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  print_header("Eval-path kernels",
               "Legacy naive path vs dispatched GEMM / fused dequant / DCT");

  BenchContext ctx;
  const ZooEntry& entry = zoo_entry(model_name);
  auto fp = ctx.zoo().model(model_name);
  auto stats = ctx.zoo().stats(model_name);
  const QuantizedModel qm(*fp, *stats,
                          method_for(entry.family, QuantBits::kInt4));

  // Largest quantization layer: the dequant timing target.
  int64_t big = 0;
  for (int64_t i = 1; i < qm.num_layers(); ++i) {
    if (qm.layer(i).weights.numel() > qm.layer(big).weights.numel()) big = i;
  }
  const QuantizedTensor& w = qm.layer(big).weights;

  // GEMM shape: a token block against the model's FFN up-projection, the
  // widest matmul a forward pass runs.
  const int64_t gm = quick ? 8 : 32;
  const int64_t gk = entry.d_model;
  const int64_t gn = entry.ffn_hidden;
  Rng rng(42);
  std::vector<float> ga(static_cast<size_t>(gm * gk));
  std::vector<float> gb(static_cast<size_t>(gn * gk));  // B^T row-major
  for (float& v : ga) v = rng.next_normal_f();
  for (float& v : gb) v = rng.next_normal_f();
  std::vector<float> dq_x(static_cast<size_t>(gm * w.cols()));
  for (float& v : dq_x) v = rng.next_normal_f();

  const size_t dct_n = quick ? 512 : 2048;  // SpecMark's chunk length
  std::vector<double> dct_x(dct_n);
  for (double& v : dct_x) v = rng.next_normal();

  PplConfig ppl_config;
  ppl_config.seq_len = 32;
  const int ppl_repeats = quick ? 1 : std::min(repeats, 2);

  // --- legacy row -------------------------------------------------------
  ThreadPool pool(1);
  ThreadPool::ScopedOverride over(pool);

  std::vector<float> ref_gemm(static_cast<size_t>(gm * gn));
  const double legacy_gemm_ms = best_of(repeats, [&] {
    Timer t;
    for (int it = 0; it < kInnerIters; ++it) {
      legacy_gemm_nt(ga.data(), gb.data(), ref_gemm.data(), gm, gk, gn);
    }
    return t.milliseconds() / kInnerIters;
  });

  std::vector<float> ref_dequant(static_cast<size_t>(gm * w.rows()));
  const double legacy_dequant_ms = best_of(repeats, [&] {
    Timer t;
    for (int it = 0; it < kInnerIters; ++it) {
      const Tensor weff = legacy_dequantize(w);
      legacy_gemm_nt(dq_x.data(), weff.data(), ref_dequant.data(), gm,
                     w.cols(), w.rows());
    }
    return t.milliseconds() / kInnerIters;
  });

  std::vector<double> ref_dct;
  const double legacy_dct_ms = best_of(repeats, [&] {
    Timer t;
    ref_dct = legacy_dct2(std::span<const double>(dct_x));
    return t.milliseconds();
  });

  double ref_ppl = 0.0;
  const double legacy_ppl_ms = best_of(ppl_repeats, [&] {
    Timer t;
    auto m = qm.materialize();
    ref_ppl = perplexity(*m, ctx.test_stream(), ppl_config);
    return t.milliseconds();
  });

  // --- dispatched rows, per kernel level --------------------------------
  struct Row {
    kernels::Level level;
    double gemm_ms;
    double dequant_ms;
    double dct_ms;
    double ppl_ms;
  };
  std::vector<Row> rows;
  for (kernels::Level level : kernels::supported_levels()) {
    kernels::ScopedLevelOverride kernel(level);
    const char* label = kernels::to_string(level);
    Row row{level, 0.0, 0.0, 0.0, 0.0};

    std::vector<float> out(static_cast<size_t>(gm * gn));
    row.gemm_ms = best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        gemm_nt(ga.data(), gb.data(), out.data(), gm, gk, gn);
      }
      return t.milliseconds() / kInnerIters;
    });
    if (!bitwise_equal(out, ref_gemm)) {
      std::fprintf(stderr, "FATAL: gemm_nt at %s diverged from legacy\n", label);
      return 1;
    }

    std::vector<float> dq_out(static_cast<size_t>(gm * w.rows()));
    row.dequant_ms = best_of(repeats, [&] {
      Timer t;
      for (int it = 0; it < kInnerIters; ++it) {
        dequant_gemm_nt(dq_x.data(), w, dq_out.data(), gm);
      }
      return t.milliseconds() / kInnerIters;
    });
    if (!bitwise_equal(dq_out, ref_dequant)) {
      std::fprintf(stderr, "FATAL: fused dequant-GEMM at %s diverged\n", label);
      return 1;
    }

    std::vector<double> dct_out;
    row.dct_ms = best_of(repeats, [&] {
      Timer t;
      dct_out = dct2(std::span<const double>(dct_x));
      return t.milliseconds();
    });
    for (size_t i = 0; i < dct_n; ++i) {
      if (std::fabs(dct_out[i] - ref_dct[i]) > 1e-9) {
        std::fprintf(stderr, "FATAL: dct2 at %s diverged at bin %zu\n", label, i);
        return 1;
      }
    }

    double ppl = 0.0;
    row.ppl_ms = best_of(ppl_repeats, [&] {
      Timer t;
      ppl = perplexity(qm, ctx.test_stream(), ppl_config);
      return t.milliseconds();
    });
    if (ppl != ref_ppl) {
      std::fprintf(stderr, "FATAL: fused perplexity at %s != materialized\n",
                   label);
      return 1;
    }
    rows.push_back(row);
  }

  TablePrinter table({"path", "gemm ms", "dequant ms", "dct ms", "ppl ms",
                      "gemm x", "dequant x", "dct x", "ppl x"});
  table.add_row({"legacy", TablePrinter::fmt(legacy_gemm_ms, 3),
                 TablePrinter::fmt(legacy_dequant_ms, 3),
                 TablePrinter::fmt(legacy_dct_ms, 3),
                 TablePrinter::fmt(legacy_ppl_ms, 1), "1.00", "1.00", "1.00",
                 "1.00"});
  for (const Row& row : rows) {
    table.add_row({kernels::to_string(row.level),
                   TablePrinter::fmt(row.gemm_ms, 3),
                   TablePrinter::fmt(row.dequant_ms, 3),
                   TablePrinter::fmt(row.dct_ms, 3),
                   TablePrinter::fmt(row.ppl_ms, 1),
                   TablePrinter::fmt(legacy_gemm_ms / row.gemm_ms, 2),
                   TablePrinter::fmt(legacy_dequant_ms / row.dequant_ms, 2),
                   TablePrinter::fmt(legacy_dct_ms / row.dct_ms, 2),
                   TablePrinter::fmt(legacy_ppl_ms / row.ppl_ms, 2)});
  }
  table.print();
  std::printf("(gemm: %lld x %lld x %lld nt; dequant: fused vs materialize, "
              "layer %s; dct: n = %zu; 1 pool thread; active default = %s)\n",
              static_cast<long long>(gm), static_cast<long long>(gk),
              static_cast<long long>(gn), qm.layer(big).name.c_str(), dct_n,
              kernels::to_string(kernels::default_level()));

  std::printf("\nJSON: {\"bench\":\"eval_path\",\"model\":\"%s\",\"repeats\":%d,"
              "\"quick\":%s,\"kernel_default\":\"%s\","
              "\"gemm_shape\":[%lld,%lld,%lld],\"dct_n\":%zu,"
              "\"legacy\":{\"gemm_ms\":%.4f,\"dequant_ms\":%.4f,"
              "\"dct_ms\":%.4f,\"ppl_ms\":%.2f},\"kernels\":[",
              model_name.c_str(), repeats, quick ? "true" : "false",
              kernels::to_string(kernels::default_level()),
              static_cast<long long>(gm), static_cast<long long>(gk),
              static_cast<long long>(gn), dct_n, legacy_gemm_ms,
              legacy_dequant_ms, legacy_dct_ms, legacy_ppl_ms);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%s{\"kernel\":\"%s\",\"gemm_ms\":%.4f,\"dequant_ms\":%.4f,"
                "\"dct_ms\":%.4f,\"ppl_ms\":%.2f,\"gemm_speedup\":%.3f,"
                "\"dequant_speedup\":%.3f,\"dct_speedup\":%.3f,"
                "\"ppl_speedup\":%.3f}",
                i ? "," : "", kernels::to_string(row.level), row.gemm_ms,
                row.dequant_ms, row.dct_ms, row.ppl_ms,
                legacy_gemm_ms / row.gemm_ms,
                legacy_dequant_ms / row.dequant_ms, legacy_dct_ms / row.dct_ms,
                legacy_ppl_ms / row.ppl_ms);
  }
  std::printf("]}\n");
  return 0;
}
