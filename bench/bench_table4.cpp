// Table 4: watermark integrity. EmMark must prove ownership of the
// watermarked model (100% WER) and must NOT fire on four non-watermarked
// models:
//   non-WM 1: the clean AWQ-quantized model,
//   non-WM 2: fine-tuned on a shifted corpus ("Alpaca"), then AWQ,
//   non-WM 3: fine-tuned on a second shifted corpus ("WikiText"), then AWQ,
//   non-WM 4: the same FP model quantized with GPTQ instead of AWQ.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Table 4",
               "Integrity: WER on the watermarked model vs four "
               "non-watermarked models (opt-2.7b-sim)");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  auto fp = ctx.zoo().model(model_name);
  auto stats = ctx.zoo().stats(model_name);

  const QuantizedModel original(*fp, *stats, QuantMethod::kAwqInt4);
  const WatermarkKey key = owner_key(QuantBits::kInt4);
  const EmMarkScheme scheme;
  QuantizedModel watermarked = original;
  scheme.insert(watermarked, *stats, key);

  // Integrity comparators.
  auto ft_alpaca = ctx.zoo().finetuned(model_name, "alpaca");
  CalibConfig calib;
  calib.batches = 8;
  calib.seq_len = 32;
  const ActivationStats stats_alpaca = collect_activation_stats(
      *ft_alpaca, ctx.zoo().env().corpus.train, calib);
  const QuantizedModel non_wm2(*ft_alpaca, stats_alpaca, QuantMethod::kAwqInt4);

  auto ft_wiki = ctx.zoo().finetuned(model_name, "wikitext");
  const ActivationStats stats_wiki = collect_activation_stats(
      *ft_wiki, ctx.zoo().env().corpus.train, calib);
  const QuantizedModel non_wm3(*ft_wiki, stats_wiki, QuantMethod::kAwqInt4);

  const QuantizedModel non_wm4(*fp, *stats, QuantMethod::kGptqInt4);

  TablePrinter table({"Model", "WER%"});
  auto wer_against = [&](const QuantizedModel& suspect) {
    return scheme.extract_derived(suspect, original, *stats, key).wer_pct();
  };
  table.add_row({"WM (EmMark on AWQ)", TablePrinter::fmt(wer_against(watermarked))});
  table.add_row({"non-WM 1 (clean AWQ)", TablePrinter::fmt(wer_against(original))});
  table.add_row({"non-WM 2 (Alpaca-style FT -> AWQ)",
                 TablePrinter::fmt(wer_against(non_wm2))});
  table.add_row({"non-WM 3 (WikiText-style FT -> AWQ)",
                 TablePrinter::fmt(wer_against(non_wm3))});
  table.add_row({"non-WM 4 (GPTQ)", TablePrinter::fmt(wer_against(non_wm4))});
  table.print();
  std::printf(
      "\nExpected shape (paper): 100%% on the watermarked model, ~0%% on all "
      "non-watermarked models (the paper reports exact 0; small nonzero "
      "chance matches are possible at our scale and stay far below any "
      "ownership threshold).\n");
  return 0;
}
