// Figure 2(a): parameter overwriting attack on the watermarked OPT-2.7B
// (AWQ INT4) model. X-axis: overwritten weights per quantization layer,
// 0..500 step 100; series: PPL, zero-shot accuracy, WER.
//
// Expected shape: model quality collapses well before WER drops -- the
// adversary destroys the model before the watermark.
#include <cstdio>

#include "attack/overwrite.h"
#include "bench_common.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Figure 2(a)",
               "Parameter overwriting attack: PPL / accuracy / WER vs number "
               "of overwritten weights per layer (opt-2.7b-sim, AWQ INT4)");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);

  const WatermarkKey key = owner_key(QuantBits::kInt4);
  const EmMarkScheme scheme;
  QuantizedModel watermarked = original;
  const SchemeRecord record = scheme.insert(watermarked, *stats, key);

  TablePrinter table(
      {"overwritten/layer", "PPL", "ZeroShotAcc%", "WER%", "log10 P_c"});
  for (int64_t count : {0, 100, 200, 300, 400, 500}) {
    QuantizedModel attacked = watermarked;
    if (count > 0) {
      OverwriteConfig attack;
      attack.per_layer = count;
      attack.seed = 1;
      overwrite_attack(attacked, attack);
    }
    const double ppl = ctx.ppl_of(attacked);
    const double acc = ctx.acc_of(attacked);
    const ExtractionReport report = scheme.extract(attacked, original, record);
    table.add_row({std::to_string(count), TablePrinter::fmt(ppl),
                   TablePrinter::fmt(acc), TablePrinter::fmt(report.wer_pct()),
                   TablePrinter::fmt(report.strength_log10(), 1)});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): PPL rises past usability near 300/layer while "
      "WER stays >99%%. Scale note: these counts hit 5-25%% of our small "
      "layers (vs ~0.01%% at paper scale), so WER declines faster here -- "
      "but the surviving signature stays an overwhelming proof (log10 P_c "
      "column) long after the model is unusable.\n");
  return 0;
}
