// Design-choice ablation (DESIGN.md): why the score needs *both* terms.
//
// Four placement policies are attacked with the same overwriting budget:
//   S_q only   (alpha=1, beta=0)  -- quality-aware, saliency-blind
//   S_r only   (alpha=0, beta=1)  -- saliency-aware, magnitude-blind
//   S_q + S_r  (alpha=beta=0.5)   -- EmMark default
//   random     (RandomWM)         -- no scoring at all
// Reported: PPL cost of insertion, and WER after a fixed overwriting attack.
// The combined score should match the best column on both axes.
#include <cstdio>

#include "attack/overwrite.h"
#include "bench_common.h"
#include "wm/randomwm.h"

int main() {
  using namespace emmark;
  using namespace emmark::bench;

  print_header("Ablation: scoring terms",
               "Insertion quality cost and post-attack WER for S_q-only, "
               "S_r-only, combined, and random placement (opt-2.7b-sim, AWQ "
               "INT4)");

  BenchContext ctx;
  const std::string model_name = "opt-2.7b-sim";
  const QuantizedModel original = ctx.quantize(model_name, QuantBits::kInt4);
  auto stats = ctx.zoo().stats(model_name);
  const double base_ppl = ctx.ppl_of(original);

  OverwriteConfig attack;
  attack.per_layer = 300;
  attack.seed = 3;

  TablePrinter table({"policy", "insert dPPL", "WER% (no attack)",
                      "WER% (300/layer overwrite)"});

  auto run_emmark = [&](const char* label, double alpha, double beta) {
    WatermarkKey key = owner_key(QuantBits::kInt4);
    key.alpha = alpha;
    key.beta = beta;
    key.bits_per_layer = 24;
    key.candidate_ratio = 6;
    const EmMarkScheme scheme;
    QuantizedModel wm = original;
    const SchemeRecord record = scheme.insert(wm, *stats, key);
    const double dppl = ctx.ppl_of(wm) - base_ppl;
    const double wer0 = scheme.extract(wm, original, record).wer_pct();
    QuantizedModel attacked = wm;
    overwrite_attack(attacked, attack);
    const double wer1 = scheme.extract(attacked, original, record).wer_pct();
    table.add_row({label, TablePrinter::fmt(dppl, 3), TablePrinter::fmt(wer0),
                   TablePrinter::fmt(wer1)});
  };

  run_emmark("S_q only (1, 0)", 1.0, 0.0);
  run_emmark("S_r only (0, 1)", 0.0, 1.0);
  run_emmark("combined (0.5, 0.5)", 0.5, 0.5);

  {
    const RandomWMScheme scheme;
    WatermarkKey key;
    key.seed = kOwnerSeed;
    key.bits_per_layer = 24;
    QuantizedModel wm = original;
    const SchemeRecord record = scheme.insert(wm, *stats, key);
    const double dppl = ctx.ppl_of(wm) - base_ppl;
    const double wer0 = scheme.extract(wm, original, record).wer_pct();
    QuantizedModel attacked = wm;
    overwrite_attack(attacked, attack);
    const double wer1 = scheme.extract(attacked, original, record).wer_pct();
    table.add_row({"random (RandomWM)", TablePrinter::fmt(dppl, 3),
                   TablePrinter::fmt(wer0), TablePrinter::fmt(wer1)});
  }
  table.print();
  std::printf(
      "\nReading: S_q protects insertion quality (low dPPL); both scored "
      "policies and random keep WER under a uniform overwrite (hitting a "
      "specific bit is equally unlikely everywhere) -- the saliency term's "
      "value is adversarial: removal *targeted* at low-saliency weights "
      "would dodge S_r-placed bits only at ruinous quality cost.\n");
  return 0;
}
