// Table 2: EmMark's watermarking efficiency -- insertion time per
// quantization layer and accelerator memory (always 0: CPU-only).
//
// Uses google-benchmark for the timing loop; the paper reports <=0.4s per
// layer on real OPT layers and 0 GB of GPU memory.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace emmark;
using namespace emmark::bench;

struct Table2Fixture {
  Table2Fixture() {
    BenchContext ctx;
    // OPT family (as in the paper's Table 2); mid-size model.
    fp = ctx.zoo().model("opt-2.7b-sim");
    stats = ctx.zoo().stats("opt-2.7b-sim");
    int8_model = std::make_unique<QuantizedModel>(
        *fp, *stats, QuantMethod::kSmoothQuantInt8);
    int4_model = std::make_unique<QuantizedModel>(*fp, *stats, QuantMethod::kAwqInt4);
  }
  std::shared_ptr<TransformerLM> fp;
  std::shared_ptr<const ActivationStats> stats;
  std::unique_ptr<QuantizedModel> int8_model;
  std::unique_ptr<QuantizedModel> int4_model;
};

Table2Fixture& fixture() {
  static Table2Fixture f;
  return f;
}

void insert_benchmark(benchmark::State& state, const QuantizedModel& original,
                      QuantBits bits) {
  auto stats = fixture().stats;
  const WatermarkKey key = owner_key(bits);
  const auto scheme = WatermarkRegistry::create("emmark");
  for (auto _ : state) {
    QuantizedModel wm = original;  // copy outside timing? paper times insertion
    const SchemeRecord record = scheme->insert(wm, *stats, key);
    benchmark::DoNotOptimize(scheme->total_bits(record));
  }
  state.counters["layers"] = static_cast<double>(original.num_layers());
  state.counters["s_per_layer"] = benchmark::Counter(
      static_cast<double>(original.num_layers()),
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
  state.counters["gpu_memory_gb"] = 0.0;  // all scoring/insertion on CPU
}

void BM_InsertInt8(benchmark::State& state) {
  insert_benchmark(state, *fixture().int8_model, QuantBits::kInt8);
}

void BM_InsertInt4(benchmark::State& state) {
  insert_benchmark(state, *fixture().int4_model, QuantBits::kInt4);
}

BENCHMARK(BM_InsertInt8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InsertInt4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_header("Table 2",
               "EmMark watermark insertion efficiency: wall-clock per model "
               "(divide by `layers` for per-layer time), GPU memory = 0 GB");
  // Also print a paper-style summary table outside the benchmark loop.
  {
    Table2Fixture& f = fixture();
    TablePrinter table({"Quantization", "Time per layer (s)", "GPU Memory (GB)"});
    for (auto [bits, model] :
         {std::pair{QuantBits::kInt8, f.int8_model.get()},
          std::pair{QuantBits::kInt4, f.int4_model.get()}}) {
      // Best of several repetitions (first run pays allocator warm-up).
      const auto scheme = WatermarkRegistry::create("emmark");
      double best = 1e30;
      for (int rep = 0; rep < 7; ++rep) {
        QuantizedModel wm = *model;
        Timer timer;
        scheme->insert(wm, *f.stats, owner_key(bits));
        best = std::min(best, timer.seconds());
      }
      const double per_layer = best / static_cast<double>(model->num_layers());
      table.add_row({to_string(bits), TablePrinter::fmt(per_layer, 6), "0"});
    }
    table.print();
    std::printf("Paper reports 0.4s (INT8) / 0.3s (INT4) per ~10^6-weight "
                "layer; our layers are ~10^3-10^4 weights, so absolute times "
                "are smaller, with the same INT4 < INT8 ordering and 0 GPU "
                "memory.\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
