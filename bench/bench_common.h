// Shared fixtures for the paper-reproduction benches.
//
// Every bench binary prints the rows of one table/figure from the paper's
// evaluation section. Models come from the cached model zoo (trained on
// first use); quantization follows the paper's mapping:
//   INT8: SmoothQuant for the OPT family, LLM.int8() for LLaMA-2,
//   INT4: AWQ for every model.
//
// Scale note: paper models have 10^6..10^7 weights per quantization layer
// and take 300 (INT8) / 40 (INT4) bits per layer; our simulated layers have
// 10^3..10^4 weights, so the default per-layer signature lengths are scaled
// pro-rata (24 / 8) with a tighter candidate-pool multiplier. EXPERIMENTS.md
// records the mapping next to each table.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "eval/perplexity.h"
#include "eval/report.h"
#include "eval/zeroshot.h"
#include "model_zoo/zoo.h"
#include "quant/qmodel.h"
#include "wm/emmark.h"

namespace emmark::bench {

constexpr int64_t kBitsPerLayerInt8 = 24;  // paper: 300 on 10^6-weight layers
constexpr int64_t kBitsPerLayerInt4 = 8;   // paper: 40
constexpr int64_t kCandidateRatio = 10;    // paper: 50-60 on 10^6-weight layers
constexpr uint64_t kOwnerSeed = 100;       // paper Section 5.1

/// Paper's quantizer per (family, bits).
inline QuantMethod method_for(ArchFamily family, QuantBits bits) {
  if (bits == QuantBits::kInt4) return QuantMethod::kAwqInt4;
  return family == ArchFamily::kOptStyle ? QuantMethod::kSmoothQuantInt8
                                         : QuantMethod::kLlmInt8;
}

inline int64_t default_bits(QuantBits bits) {
  return bits == QuantBits::kInt4 ? kBitsPerLayerInt4 : kBitsPerLayerInt8;
}

inline WatermarkKey owner_key(QuantBits bits) {
  WatermarkKey key;
  key.seed = kOwnerSeed;
  key.alpha = 0.5;
  key.beta = 0.5;
  key.bits_per_layer = default_bits(bits);
  key.candidate_ratio = kCandidateRatio;
  return key;
}

/// Zoo + evaluation fixtures shared by a bench run.
class BenchContext {
 public:
  BenchContext() : zoo_() {
    // Trimmed task suites keep the 72-cell Table 1 grid tractable.
    tasks_ = make_task_suite(synth_vocab(), /*items_per_task=*/60, /*seed=*/310);
  }

  ModelZoo& zoo() { return zoo_; }
  const std::vector<TaskSet>& tasks() const { return tasks_; }
  const std::vector<TokenId>& test_stream() const { return zoo_.env().corpus.test; }

  double ppl_of(TransformerLM& model) const {
    PplConfig config;
    config.seq_len = 32;
    return perplexity(model, test_stream(), config);
  }

  double ppl_of(const QuantizedModel& qm) const {
    // Fused dequant-GEMM eval path; bit-identical to materialize() + ppl.
    PplConfig config;
    config.seq_len = 32;
    return perplexity(qm, test_stream(), config);
  }

  double acc_of(TransformerLM& model) const {
    return evaluate_zeroshot(model, tasks_).mean_accuracy_pct;
  }

  double acc_of(const QuantizedModel& qm) const {
    auto m = qm.materialize_view();  // forward-only eval: fused path is safe
    return acc_of(*m);
  }

  /// Quantizes a zoo model with the paper's method for the bit width.
  QuantizedModel quantize(const std::string& name, QuantBits bits) {
    auto fp = zoo_.model(name);
    auto stats = zoo_.stats(name);
    return QuantizedModel(*fp, *stats, method_for(zoo_entry(name).family, bits));
  }

 private:
  ModelZoo zoo_;
  std::vector<TaskSet> tasks_;
};

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("EmMark reproduction -- %s\n%s\n", experiment, description);
  std::printf("================================================================\n");
}

}  // namespace emmark::bench
